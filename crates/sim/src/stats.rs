//! Small statistics helpers shared by the simulation and the harness.

use crate::time::SimTime;

/// A saturating event counter with byte accounting.
///
/// # Example
///
/// ```
/// use press_sim::Counter;
///
/// let mut c = Counter::default();
/// c.add(1024);
/// c.add(2048);
/// assert_eq!(c.count(), 2);
/// assert_eq!(c.bytes(), 3072);
/// assert_eq!(c.mean_size(), 1536.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    count: u64,
    bytes: u64,
}

impl Counter {
    /// Records one event of `bytes` bytes.
    pub fn add(&mut self, bytes: u64) {
        self.count = self.count.saturating_add(1);
        self.bytes = self.bytes.saturating_add(bytes);
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: Counter) {
        self.count = self.count.saturating_add(other.count);
        self.bytes = self.bytes.saturating_add(other.bytes);
    }

    /// Number of recorded events.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total recorded bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Mean event size in bytes, or zero with no events.
    pub fn mean_size(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.bytes as f64 / self.count as f64
        }
    }
}

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use press_sim::MeanVar;
///
/// let mut mv = MeanVar::default();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     mv.push(x);
/// }
/// assert_eq!(mv.mean(), 5.0);
/// assert!((mv.variance() - 32.0 / 7.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanVar {
    n: u64,
    mean: f64,
    m2: f64,
}

impl MeanVar {
    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (zero with no observations).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (zero with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. queue length
/// or number of open connections over simulated time.
///
/// # Example
///
/// ```
/// use press_sim::{TimeWeighted, SimTime};
///
/// let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
/// tw.update(SimTime::from_secs(1), 10.0); // value was 0 for 1s
/// tw.update(SimTime::from_secs(3), 0.0);  // value was 10 for 2s
/// assert!((tw.average(SimTime::from_secs(3)) - 20.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    last_at: SimTime,
    value: f64,
    weighted_sum: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Starts tracking at `start` with initial `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_at: start,
            value,
            weighted_sum: 0.0,
            start,
        }
    }

    /// Records that the signal changed to `value` at time `at`.
    ///
    /// Updates with `at` earlier than the previous update are ignored
    /// (the signal is assumed right-continuous).
    pub fn update(&mut self, at: SimTime, value: f64) {
        if at > self.last_at {
            let dt = (at - self.last_at).as_secs_f64();
            self.weighted_sum += self.value * dt;
            self.last_at = at;
        }
        self.value = value;
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Time-weighted average over `[start, until]`.
    pub fn average(&self, until: SimTime) -> f64 {
        let mut sum = self.weighted_sum;
        if until > self.last_at {
            sum += self.value * (until - self.last_at).as_secs_f64();
        }
        let span = until.saturating_sub(self.start).as_secs_f64();
        if span == 0.0 {
            self.value
        } else {
            sum / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_merge() {
        let mut a = Counter::default();
        a.add(10);
        let mut b = Counter::default();
        b.add(20);
        b.add(30);
        a.merge(b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bytes(), 60);
    }

    #[test]
    fn counter_empty_mean() {
        assert_eq!(Counter::default().mean_size(), 0.0);
    }

    #[test]
    fn meanvar_small_counts() {
        let mut mv = MeanVar::default();
        assert_eq!(mv.mean(), 0.0);
        assert_eq!(mv.variance(), 0.0);
        mv.push(3.0);
        assert_eq!(mv.mean(), 3.0);
        assert_eq!(mv.variance(), 0.0);
        assert_eq!(mv.count(), 1);
    }

    #[test]
    fn time_weighted_ignores_out_of_order() {
        let mut tw = TimeWeighted::new(SimTime::from_secs(1), 5.0);
        tw.update(SimTime::from_secs(3), 1.0);
        tw.update(SimTime::from_secs(2), 99.0); // late: value change applied, no time credit
        let avg = tw.average(SimTime::from_secs(3));
        assert!((avg - 5.0).abs() < 1e-12);
        assert_eq!(tw.current(), 99.0);
    }

    #[test]
    fn time_weighted_extends_to_horizon() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 2.0);
        tw.update(SimTime::from_secs(1), 4.0);
        // avg over [0, 2] = (2*1 + 4*1)/2 = 3
        assert!((tw.average(SimTime::from_secs(2)) - 3.0).abs() < 1e-12);
    }
}
