//! Simulation-time statistics helpers.
//!
//! The scalar accumulators ([`press_telem::Counter`],
//! [`press_telem::MeanVar`], [`press_telem::Histogram`]) live in the
//! unified observability crate and are re-exported from the crate root;
//! only [`TimeWeighted`] stays here because it is coupled to
//! [`SimTime`].

use crate::time::SimTime;

/// Time-weighted average of a piecewise-constant signal, e.g. queue length
/// or number of open connections over simulated time.
///
/// # Example
///
/// ```
/// use press_sim::{TimeWeighted, SimTime};
///
/// let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
/// tw.update(SimTime::from_secs(1), 10.0); // value was 0 for 1s
/// tw.update(SimTime::from_secs(3), 0.0);  // value was 10 for 2s
/// assert!((tw.average(SimTime::from_secs(3)) - 20.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    last_at: SimTime,
    value: f64,
    weighted_sum: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Starts tracking at `start` with initial `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_at: start,
            value,
            weighted_sum: 0.0,
            start,
        }
    }

    /// Records that the signal changed to `value` at time `at`.
    ///
    /// Updates with `at` earlier than the previous update are ignored
    /// (the signal is assumed right-continuous).
    pub fn update(&mut self, at: SimTime, value: f64) {
        if at > self.last_at {
            let dt = (at - self.last_at).as_secs_f64();
            self.weighted_sum += self.value * dt;
            self.last_at = at;
        }
        self.value = value;
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Time-weighted average over `[start, until]`.
    pub fn average(&self, until: SimTime) -> f64 {
        let mut sum = self.weighted_sum;
        if until > self.last_at {
            sum += self.value * (until - self.last_at).as_secs_f64();
        }
        let span = until.saturating_sub(self.start).as_secs_f64();
        if span == 0.0 {
            self.value
        } else {
            sum / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_ignores_out_of_order() {
        let mut tw = TimeWeighted::new(SimTime::from_secs(1), 5.0);
        tw.update(SimTime::from_secs(3), 1.0);
        tw.update(SimTime::from_secs(2), 99.0); // late: value change applied, no time credit
        let avg = tw.average(SimTime::from_secs(3));
        assert!((avg - 5.0).abs() < 1e-12);
        assert_eq!(tw.current(), 99.0);
    }

    #[test]
    fn time_weighted_extends_to_horizon() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 2.0);
        tw.update(SimTime::from_secs(1), 4.0);
        // avg over [0, 2] = (2*1 + 4*1)/2 = 3
        assert!((tw.average(SimTime::from_secs(2)) - 3.0).abs() < 1e-12);
    }
}
