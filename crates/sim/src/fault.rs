//! Deterministic fault injection: plans, injectors, and retry backoff.
//!
//! A [`FaultPlan`] is a pure description of everything that is allowed to
//! go wrong in a run — node crash/recovery windows, message drop/delay/
//! corruption probabilities, disk error rates — plus the recovery knobs
//! (failure-detection delay, per-peer request timeout, bounded retries).
//! A [`FaultInjector`] turns the plan's probabilities into a reproducible
//! decision stream: the same plan yields the same injected-fault sequence
//! on every run, which keeps faulty simulations byte-identical across
//! repetitions and lets two engines (simulator and live cluster) share
//! one fault vocabulary.
//!
//! The injector deliberately carries its own tiny RNG (splitmix64) so the
//! crate stays dependency-free and the decision stream can never be
//! perturbed by unrelated draws elsewhere in a model. Probabilities of
//! exactly zero never advance the RNG, so a [`FaultPlan::none`] plan is
//! inert: code paths that consult it behave identically to code that was
//! never wired for faults at all.

/// One node's crash (and optional recovery) window.
///
/// Triggers are expressed in *completed requests across the whole
/// cluster*, which both engines count identically; this keeps the plan
/// meaningful at any request rate and makes "crash at 25% of the run"
/// trivially expressible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The node that crashes.
    pub node: u16,
    /// Crash once this many requests have completed cluster-wide.
    pub crash_after: u64,
    /// Recover (cold cache, fresh membership epoch) once this many
    /// requests have completed; `None` means the node never returns.
    pub recover_after: Option<u64>,
}

/// A complete, seeded description of the faults injected into one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injector's decision stream.
    pub seed: u64,
    /// Node crash/recovery windows.
    pub crashes: Vec<CrashWindow>,
    /// Probability in `[0, 1]` that an intra-cluster message is lost in
    /// transit (after send-side costs are paid).
    pub drop_probability: f64,
    /// Probability in `[0, 1]` that a message is delayed by
    /// [`FaultPlan::delay_micros`] on top of its normal latency.
    pub delay_probability: f64,
    /// Extra latency applied to delayed messages, in microseconds.
    pub delay_micros: u64,
    /// Probability in `[0, 1]` that a delivered message is corrupted and
    /// discarded by the receiver (costs paid on both sides).
    pub corrupt_probability: f64,
    /// Probability in `[0, 1]` that a disk access fails and is retried.
    pub disk_error_probability: f64,
    /// How long after a crash/recovery the membership change is observed
    /// by the surviving nodes, in microseconds.
    pub detection_micros: u64,
    /// Base per-peer request timeout before a forwarded request is
    /// retried, in microseconds. Backoff doubles it per attempt. Must sit
    /// above the workload's tail response time, or healthy-but-slow
    /// requests get retried spuriously.
    pub retry_timeout_micros: u64,
    /// Retries before a request falls back to local (disk) service.
    pub max_retries: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The inert plan: nothing fails, nothing is ever drawn from the RNG,
    /// and fault-aware code paths reduce to the fault-free originals.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            crashes: Vec::new(),
            drop_probability: 0.0,
            delay_probability: 0.0,
            delay_micros: 200,
            corrupt_probability: 0.0,
            disk_error_probability: 0.0,
            detection_micros: 2_000,
            retry_timeout_micros: 250_000,
            max_retries: 3,
        }
    }

    /// A plan that only crashes nodes (no probabilistic faults), with the
    /// default detection/retry parameters.
    pub fn crashes_only(seed: u64, crashes: Vec<CrashWindow>) -> Self {
        FaultPlan {
            seed,
            crashes,
            ..FaultPlan::none()
        }
    }

    /// Adds one crash window (builder style).
    pub fn with_crash(mut self, node: u16, crash_after: u64, recover_after: Option<u64>) -> Self {
        self.crashes.push(CrashWindow {
            node,
            crash_after,
            recover_after,
        });
        self
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        !self.crashes.is_empty()
            || self.drop_probability > 0.0
            || self.delay_probability > 0.0
            || self.corrupt_probability > 0.0
            || self.disk_error_probability > 0.0
    }

    /// Panics if the plan is malformed (probability outside `[0, 1]`,
    /// recovery not after its crash, or a crashed node outside `0..nodes`).
    pub fn assert_valid(&self, nodes: usize) {
        for (name, p) in [
            ("drop_probability", self.drop_probability),
            ("delay_probability", self.delay_probability),
            ("corrupt_probability", self.corrupt_probability),
            ("disk_error_probability", self.disk_error_probability),
        ] {
            assert!(
                (0.0..=1.0).contains(&p) && p.is_finite(),
                "{name} must be in [0, 1], got {p}"
            );
        }
        for w in &self.crashes {
            assert!(
                (w.node as usize) < nodes,
                "crash window names node {} of {nodes}",
                w.node
            );
            if let Some(r) = w.recover_after {
                assert!(
                    r > w.crash_after,
                    "node {} recovers at {r} <= crash at {}",
                    w.node,
                    w.crash_after
                );
            }
        }
        assert!(
            self.crashes.len() < nodes.max(1),
            "plan crashes every node; at least one must survive"
        );
    }

    /// The backoff before retry `attempt` (0-based) of request `token`,
    /// in microseconds: seeded decorrelated jitter over
    /// [`decorrelated_jitter_micros`] keyed on the plan seed, so each
    /// request walks its own reproducible schedule in `[base, 8 * base]`.
    pub fn backoff_micros(&self, token: u64, attempt: u32) -> u64 {
        decorrelated_jitter_micros(self.seed, token, self.retry_timeout_micros, attempt)
    }

    /// Builds the injector for this plan's probabilistic decisions.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector {
            drop_probability: self.drop_probability,
            delay_probability: self.delay_probability,
            delay_micros: self.delay_micros,
            corrupt_probability: self.corrupt_probability,
            disk_error_probability: self.disk_error_probability,
            state: self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Crash and recovery triggers as `(completed_requests, node, alive)`
    /// transitions, sorted by trigger count (ties broken by node id, with
    /// recoveries after crashes) so both engines apply them in one
    /// deterministic order.
    pub fn schedule(&self) -> Vec<(u64, u16, bool)> {
        let mut events: Vec<(u64, u16, bool)> = Vec::new();
        for w in &self.crashes {
            events.push((w.crash_after, w.node, false));
            if let Some(r) = w.recover_after {
                events.push((r, w.node, true));
            }
        }
        events.sort_by_key(|&(at, node, alive)| (at, alive, node));
        events
    }
}

/// One splitmix64 step (Steele et al.): full-period, passes BigCrush,
/// and two instructions short of free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded decorrelated-jitter backoff, in microseconds.
///
/// `sleep(0) = base`, then `sleep(n) = min(cap, uniform(base, 3 *
/// sleep(n-1)))` with `cap = 8 * base` — the "decorrelated jitter"
/// strategy, which kills the synchronized retry storms a capped
/// exponential produces when many peers arm timeouts off the same
/// failure instant. The draw stream is a private splitmix64 keyed on
/// `(seed, token)`: stateless, reproducible per request across runs and
/// across both engines, and different tokens desynchronize immediately.
pub fn decorrelated_jitter_micros(seed: u64, token: u64, base: u64, attempt: u32) -> u64 {
    let base = base.max(1);
    let cap = base.saturating_mul(8);
    let mut state = seed ^ token.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut sleep = base;
    for _ in 0..attempt.min(16) {
        let unit = (splitmix64(&mut state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let hi = sleep.saturating_mul(3).min(cap);
        sleep = base + ((hi - base) as f64 * unit) as u64;
    }
    sleep.min(cap)
}

/// The reproducible decision stream of a [`FaultPlan`].
///
/// Each query draws from a private splitmix64 stream *only when the
/// corresponding probability is nonzero*, so inactive fault categories
/// cannot perturb the sequence of active ones across configurations that
/// share a seed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    drop_probability: f64,
    delay_probability: f64,
    delay_micros: u64,
    corrupt_probability: f64,
    disk_error_probability: f64,
    state: u64,
}

impl FaultInjector {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    fn decide(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            // Still advance the stream so `p = 1.0` and `p = 0.999...`
            // plans drift identically.
            let _ = self.next_u64();
            return true;
        }
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Whether the next message is lost in transit.
    pub fn drop_message(&mut self) -> bool {
        self.decide(self.drop_probability)
    }

    /// Extra delivery latency for the next message, in microseconds.
    pub fn delay_message(&mut self) -> Option<u64> {
        if self.decide(self.delay_probability) {
            Some(self.delay_micros)
        } else {
            None
        }
    }

    /// Whether the next delivered message arrives corrupted.
    pub fn corrupt_message(&mut self) -> bool {
        self.decide(self.corrupt_probability)
    }

    /// Whether the next disk access fails.
    pub fn disk_error(&mut self) -> bool {
        self.decide(self.disk_error_probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_probability: 0.25,
            delay_probability: 0.1,
            corrupt_probability: 0.05,
            disk_error_probability: 0.02,
            ..FaultPlan::none()
        }
    }

    #[test]
    fn none_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        let mut inj = plan.injector();
        let start = inj.clone();
        for _ in 0..100 {
            assert!(!inj.drop_message());
            assert!(inj.delay_message().is_none());
            assert!(!inj.corrupt_message());
            assert!(!inj.disk_error());
        }
        // Zero probabilities never advance the stream.
        assert_eq!(inj, start);
    }

    #[test]
    fn same_seed_same_decision_stream() {
        let plan = lossy_plan(42);
        let mut a = plan.injector();
        let mut b = plan.injector();
        for _ in 0..10_000 {
            assert_eq!(a.drop_message(), b.drop_message());
            assert_eq!(a.delay_message(), b.delay_message());
            assert_eq!(a.corrupt_message(), b.corrupt_message());
            assert_eq!(a.disk_error(), b.disk_error());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = lossy_plan(1).injector();
        let mut b = lossy_plan(2).injector();
        let seq_a: Vec<bool> = (0..512).map(|_| a.drop_message()).collect();
        let seq_b: Vec<bool> = (0..512).map(|_| b.drop_message()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn empirical_rates_track_probabilities() {
        let mut inj = FaultPlan {
            drop_probability: 0.3,
            ..FaultPlan::none()
        }
        .injector();
        let n = 100_000;
        let dropped = (0..n).filter(|_| inj.drop_message()).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn schedule_orders_transitions() {
        let plan = FaultPlan::crashes_only(0, Vec::new())
            .with_crash(3, 500, Some(900))
            .with_crash(1, 200, None)
            .with_crash(2, 500, None);
        assert_eq!(
            plan.schedule(),
            vec![
                (200, 1, false),
                (500, 2, false),
                (500, 3, false),
                (900, 3, true)
            ]
        );
    }

    #[test]
    fn backoff_first_attempt_is_base_and_later_stay_bounded() {
        let plan = FaultPlan {
            seed: 9,
            retry_timeout_micros: 1_000,
            ..FaultPlan::none()
        };
        for token in 0..64 {
            assert_eq!(plan.backoff_micros(token, 0), 1_000, "attempt 0 = base");
            for attempt in 1..8 {
                let b = plan.backoff_micros(token, attempt);
                assert!((1_000..=8_000).contains(&b), "backoff {b} out of bounds");
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_per_token_and_decorrelated_across_tokens() {
        let plan = FaultPlan {
            seed: 7,
            retry_timeout_micros: 1_000,
            ..FaultPlan::none()
        };
        // Same (seed, token, attempt) always replays the same schedule.
        for attempt in 0..6 {
            assert_eq!(
                plan.backoff_micros(41, attempt),
                plan.backoff_micros(41, attempt)
            );
        }
        // Different tokens (and different seeds) desynchronize: across
        // many tokens the third attempt cannot collapse to one value the
        // way the old capped exponential did.
        let spread: std::collections::BTreeSet<u64> =
            (0..256).map(|t| plan.backoff_micros(t, 2)).collect();
        assert!(
            spread.len() > 128,
            "only {} distinct backoffs",
            spread.len()
        );
        let other = FaultPlan {
            seed: 8,
            ..plan.clone()
        };
        assert_ne!(
            (0..64)
                .map(|t| plan.backoff_micros(t, 2))
                .collect::<Vec<_>>(),
            (0..64)
                .map(|t| other.backoff_micros(t, 2))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn jitter_helper_respects_base_and_cap() {
        for attempt in 0..12 {
            let b = decorrelated_jitter_micros(1, 2, 250_000, attempt);
            assert!((250_000..=2_000_000).contains(&b));
        }
        // Degenerate base never panics or returns zero.
        assert!(decorrelated_jitter_micros(0, 0, 0, 5) >= 1);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn rejects_bad_probability() {
        let plan = FaultPlan {
            drop_probability: 1.5,
            ..FaultPlan::none()
        };
        plan.assert_valid(4);
    }

    #[test]
    #[should_panic(expected = "at least one must survive")]
    fn rejects_killing_everyone() {
        let plan = FaultPlan::crashes_only(0, Vec::new())
            .with_crash(0, 10, None)
            .with_crash(1, 10, None);
        plan.assert_valid(2);
    }

    #[test]
    #[should_panic(expected = "recovers at")]
    fn rejects_recovery_before_crash() {
        let plan = FaultPlan::crashes_only(0, Vec::new()).with_crash(0, 100, Some(50));
        plan.assert_valid(4);
    }
}
