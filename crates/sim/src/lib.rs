//! Discrete-event simulation engine for the PRESS reproduction.
//!
//! The engine is deliberately small and deterministic: a model defines an
//! event type and a handler, the [`Simulator`] owns a time-ordered event
//! queue, and passive [`Resource`]s compute completion times for FIFO
//! single-server stations (CPU, disk, NIC, wire).
//!
//! # Example
//!
//! ```
//! use press_sim::{Simulator, SimTime, Model, Scheduler};
//!
//! struct Counter { fired: u32 }
//!
//! impl Model for Counter {
//!     type Event = u32;
//!     fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
//!         self.fired += ev;
//!         if self.fired < 3 {
//!             sched.schedule(now + SimTime::from_micros(10), 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(Counter { fired: 0 });
//! sim.scheduler_mut().schedule(SimTime::ZERO, 1);
//! sim.run();
//! assert_eq!(sim.model().fired, 3);
//! assert_eq!(sim.now(), SimTime::from_micros(20));
//! ```

mod engine;
mod fault;
mod resource;
mod stats;
mod time;

pub use engine::{Model, Scheduler, Simulator};
pub use fault::{decorrelated_jitter_micros, CrashWindow, FaultInjector, FaultPlan};
// Scalar statistics moved to press-telem (the unified observability
// crate); re-exported so `press_sim::Histogram` etc. keep working.
pub use press_telem::{Counter, Histogram, MeanVar};
pub use resource::{Resource, ResourceStats};
pub use stats::TimeWeighted;
pub use time::SimTime;
