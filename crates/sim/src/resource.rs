//! Passive FIFO single-server resources.
//!
//! A [`Resource`] models a station that serves work requests one at a time
//! in arrival order — a CPU, a disk, a NIC, or a network wire. It is
//! *passive*: submitting work returns the completion time, and the caller
//! (the model) schedules the corresponding event. This keeps the engine free
//! of callbacks and makes resource state trivially serializable.

use crate::time::SimTime;

/// Utilization and demand statistics for a [`Resource`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceStats {
    /// Total busy time accumulated.
    pub busy: SimTime,
    /// Number of work items served.
    pub jobs: u64,
    /// Total time items spent waiting before service began.
    pub waited: SimTime,
}

impl ResourceStats {
    /// Mean waiting time per job, or zero if no jobs were served.
    pub fn mean_wait(&self) -> SimTime {
        match self.waited.as_nanos().checked_div(self.jobs) {
            Some(ns) => SimTime::from_nanos(ns),
            None => SimTime::ZERO,
        }
    }

    /// Utilization over the interval `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            self.busy.as_secs_f64() / horizon.as_secs_f64()
        }
    }
}

/// A FIFO single-server queueing station with deterministic service demands.
///
/// Work submitted at time `t` with demand `d` begins service at
/// `max(t, busy_until)` and completes `d` later. The resource tracks busy
/// time, job counts and waiting time, optionally split across caller-defined
/// categories (used to reproduce the paper's Figure 1 CPU-time breakdown).
///
/// # Example
///
/// ```
/// use press_sim::{Resource, SimTime};
///
/// let mut cpu = Resource::new("cpu", 2);
/// let t0 = SimTime::ZERO;
/// let done_a = cpu.submit(t0, SimTime::from_micros(100), 0);
/// let done_b = cpu.submit(t0, SimTime::from_micros(50), 1);
/// assert_eq!(done_a, SimTime::from_micros(100));
/// // b queued behind a:
/// assert_eq!(done_b, SimTime::from_micros(150));
/// assert_eq!(cpu.stats().jobs, 2);
/// assert_eq!(cpu.category_busy(1), SimTime::from_micros(50));
/// ```
#[derive(Debug, Clone)]
pub struct Resource {
    name: &'static str,
    busy_until: SimTime,
    stats: ResourceStats,
    category_busy: Vec<SimTime>,
}

impl Resource {
    /// Creates a resource with `categories` accounting buckets.
    ///
    /// `name` is used in `Debug` output and diagnostics only.
    pub fn new(name: &'static str, categories: usize) -> Self {
        Resource {
            name,
            busy_until: SimTime::ZERO,
            stats: ResourceStats::default(),
            category_busy: vec![SimTime::ZERO; categories.max(1)],
        }
    }

    /// The diagnostic name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Submits work arriving at `now` with service demand `demand`, charged
    /// to accounting bucket `category`. Returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if `category` is out of range.
    pub fn submit(&mut self, now: SimTime, demand: SimTime, category: usize) -> SimTime {
        let start = self.busy_until.max(now);
        let done = start + demand;
        self.stats.waited += start - now;
        self.stats.busy += demand;
        self.stats.jobs += 1;
        self.category_busy[category] += demand;
        self.busy_until = done;
        done
    }

    /// The earliest instant at which newly submitted work would start.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Whether the resource would serve work submitted at `now` immediately.
    pub fn idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ResourceStats {
        self.stats
    }

    /// Busy time charged to `category`.
    ///
    /// # Panics
    ///
    /// Panics if `category` is out of range.
    pub fn category_busy(&self, category: usize) -> SimTime {
        self.category_busy[category]
    }

    /// Resets statistics (but not the busy horizon); used at the end of a
    /// warmup phase so that measurements cover only the steady state.
    pub fn reset_stats(&mut self) {
        self.stats = ResourceStats::default();
        for c in &mut self.category_busy {
            *c = SimTime::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ordering_and_waiting() {
        let mut r = Resource::new("disk", 1);
        let d1 = r.submit(SimTime::from_micros(0), SimTime::from_micros(10), 0);
        let d2 = r.submit(SimTime::from_micros(2), SimTime::from_micros(10), 0);
        assert_eq!(d1, SimTime::from_micros(10));
        assert_eq!(d2, SimTime::from_micros(20));
        // Second job waited 8us.
        assert_eq!(r.stats().waited, SimTime::from_micros(8));
        assert_eq!(r.stats().mean_wait(), SimTime::from_micros(4));
    }

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = Resource::new("cpu", 1);
        r.submit(SimTime::ZERO, SimTime::from_micros(5), 0);
        assert!(!r.idle_at(SimTime::from_micros(3)));
        assert!(r.idle_at(SimTime::from_micros(5)));
        let d = r.submit(SimTime::from_micros(100), SimTime::from_micros(5), 0);
        assert_eq!(d, SimTime::from_micros(105));
    }

    #[test]
    fn category_accounting() {
        let mut r = Resource::new("cpu", 3);
        r.submit(SimTime::ZERO, SimTime::from_micros(7), 0);
        r.submit(SimTime::ZERO, SimTime::from_micros(11), 2);
        r.submit(SimTime::ZERO, SimTime::from_micros(13), 2);
        assert_eq!(r.category_busy(0), SimTime::from_micros(7));
        assert_eq!(r.category_busy(1), SimTime::ZERO);
        assert_eq!(r.category_busy(2), SimTime::from_micros(24));
        assert_eq!(r.stats().busy, SimTime::from_micros(31));
    }

    #[test]
    fn utilization() {
        let mut r = Resource::new("nic", 1);
        r.submit(SimTime::ZERO, SimTime::from_micros(25), 0);
        let u = r.stats().utilization(SimTime::from_micros(100));
        assert!((u - 0.25).abs() < 1e-12);
        assert_eq!(r.stats().utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn reset_stats_keeps_horizon() {
        let mut r = Resource::new("cpu", 2);
        r.submit(SimTime::ZERO, SimTime::from_micros(50), 1);
        r.reset_stats();
        assert_eq!(r.stats().jobs, 0);
        assert_eq!(r.category_busy(1), SimTime::ZERO);
        // Horizon survives: new work queues behind old.
        let d = r.submit(SimTime::ZERO, SimTime::from_micros(1), 0);
        assert_eq!(d, SimTime::from_micros(51));
    }
}
