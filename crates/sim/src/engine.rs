//! The event loop: a time-ordered queue of model events.

use crate::time::SimTime;

/// A simulation model: application state plus an event handler.
///
/// The engine is generic over the event type so that models can use a plain
/// `enum` of events with no boxing on the hot path.
pub trait Model {
    /// The event alphabet of the model.
    type Event;

    /// Handles one event at simulated time `now`.
    ///
    /// The handler may schedule any number of future events through `sched`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Fan-out of the pending-event heap.
///
/// A 4-ary heap is shallower than a binary one (fewer sift levels per
/// pop) and its four child keys share a cache line, which is where a
/// discrete-event simulator spends its queue time.
const ARITY: usize = 4;

/// The event queue handed to [`Model::handle`] for scheduling future events.
///
/// Models only insert events; popping is normally the engine's job (the
/// engine borrows the model mutably while the model schedules), but
/// [`Scheduler::pop`] is public for standalone use and benchmarking.
///
/// Internally this is an implicit 4-ary min-heap in structure-of-arrays
/// form: `keys[i]` packs `(time, seq)` of `events[i]` into one `u128`
/// (`time` in the high 64 bits, a monotonic sequence number in the low 64),
/// so heap ordering is a single integer comparison and sift loops scan
/// contiguous keys without touching event payloads. `seq` breaks ties
/// between events scheduled for the same instant: events fire in the order
/// they were scheduled, which makes runs reproducible.
pub struct Scheduler<E> {
    /// Heap-ordered packed `(time << 64) | seq` keys, parallel to `events`.
    keys: Vec<u128>,
    /// Event payloads; `events[i]` belongs to `keys[i]`.
    events: Vec<E>,
    /// Sequence number for the next schedule, and the all-time total.
    next_seq: u64,
}

#[inline]
fn pack(at: SimTime, seq: u64) -> u128 {
    ((at.as_nanos() as u128) << 64) | seq as u128
}

#[inline]
fn unpack_time(key: u128) -> SimTime {
    SimTime::from_nanos((key >> 64) as u64)
}

impl<E> std::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("pending", &self.keys.len())
            .field("total_scheduled", &self.next_seq)
            .finish()
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Scheduler {
            keys: Vec::new(),
            events: Vec::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Events scheduled for the same instant fire in scheduling order.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.keys.push(pack(at, seq));
        self.events.push(event);
        self.sift_up(self.keys.len() - 1);
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.keys.len()
    }

    /// Total number of events ever scheduled.
    pub fn total_scheduled(&self) -> u64 {
        // Sequence numbers are dense from zero, so the next one to hand
        // out doubles as the all-time count.
        self.next_seq
    }

    /// Removes and returns the earliest pending event, if any.
    ///
    /// Ties on time come out in scheduling order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.keys.is_empty() {
            return None;
        }
        let last = self.keys.len() - 1;
        self.keys.swap(0, last);
        self.events.swap(0, last);
        let key = self.keys.pop().expect("checked non-empty");
        let event = self.events.pop().expect("keys and events stay parallel");
        if !self.keys.is_empty() {
            self.sift_down(0);
        }
        Some((unpack_time(key), event))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.keys.first().map(|&k| unpack_time(k))
    }

    // Both sift loops treat the starting slot as a hole: the sifted key is
    // held in a register and written exactly once at its final position,
    // halving key traffic versus swapping at every level.

    fn sift_up(&mut self, mut i: usize) {
        let key = self.keys[i];
        while i > 0 {
            let parent = (i - 1) / ARITY;
            let parent_key = self.keys[parent];
            if parent_key <= key {
                break;
            }
            self.keys[i] = parent_key;
            self.events.swap(parent, i);
            i = parent;
        }
        self.keys[i] = key;
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.keys.len();
        let key = self.keys[i];
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + ARITY).min(len);
            let mut min = first_child;
            let mut min_key = self.keys[first_child];
            for c in first_child + 1..last_child {
                let k = self.keys[c];
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            if key <= min_key {
                break;
            }
            self.keys[i] = min_key;
            self.events.swap(i, min);
            i = min;
        }
        self.keys[i] = key;
    }
}

/// The simulation engine: owns the model, the clock, and the event queue.
///
/// See the crate-level documentation for a complete example.
pub struct Simulator<M: Model> {
    model: M,
    sched: Scheduler<M::Event>,
    now: SimTime,
    processed: u64,
}

impl<M: Model> std::fmt::Debug for Simulator<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("processed", &self.processed)
            .field("pending", &self.sched.pending())
            .finish()
    }
}

impl<M: Model> Simulator<M> {
    /// Creates a simulator at time zero with an empty event queue.
    pub fn new(model: M) -> Self {
        Simulator {
            model,
            sched: Scheduler::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current simulated time (time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Exclusive access to the scheduler, e.g. to seed initial events.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<M::Event> {
        &mut self.sched
    }

    /// Runs one event. Returns `false` if the queue was empty.
    ///
    /// # Panics
    ///
    /// Panics if an event is scheduled in the past (a model bug).
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            Some((at, event)) => {
                assert!(at >= self.now, "event scheduled in the past");
                self.now = at;
                self.processed += 1;
                self.model.handle(at, event, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue is empty or the next event is after `deadline`.
    ///
    /// Events at exactly `deadline` are processed. On return the clock is
    /// the time of the last processed event (it is *not* advanced to
    /// `deadline` when the queue drains early).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(at) = self.sched.peek_time() {
            if at > deadline {
                break;
            }
            self.step();
        }
    }

    /// Consumes the simulator, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, u32)>,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.seen.push((now.as_nanos(), ev));
            if ev == 42 {
                sched.schedule(now + SimTime::from_nanos(5), 43);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new(Recorder::default());
        sim.scheduler_mut().schedule(SimTime::from_nanos(30), 3);
        sim.scheduler_mut().schedule(SimTime::from_nanos(10), 1);
        sim.scheduler_mut().schedule(SimTime::from_nanos(20), 2);
        sim.run();
        assert_eq!(sim.model().seen, vec![(10, 1), (20, 2), (30, 3)]);
        assert_eq!(sim.processed(), 3);
    }

    #[test]
    fn same_time_events_fire_in_scheduling_order() {
        let mut sim = Simulator::new(Recorder::default());
        let t = SimTime::from_nanos(7);
        for ev in 0..5 {
            sim.scheduler_mut().schedule(t, ev);
        }
        sim.run();
        let evs: Vec<u32> = sim.model().seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut sim = Simulator::new(Recorder::default());
        sim.scheduler_mut().schedule(SimTime::from_nanos(1), 42);
        sim.run();
        assert_eq!(sim.model().seen, vec![(1, 42), (6, 43)]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::new(Recorder::default());
        for i in 1..=10 {
            sim.scheduler_mut()
                .schedule(SimTime::from_nanos(i * 10), i as u32);
        }
        sim.run_until(SimTime::from_nanos(50));
        assert_eq!(sim.model().seen.len(), 5);
        assert_eq!(sim.now(), SimTime::from_nanos(50));
        assert_eq!(sim.scheduler_mut().pending(), 5);
        sim.run();
        assert_eq!(sim.model().seen.len(), 10);
    }

    #[test]
    fn step_on_empty_queue_returns_false() {
        let mut sim = Simulator::new(Recorder::default());
        assert!(!sim.step());
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
                sched.schedule(SimTime::ZERO, ());
            }
        }
        let mut sim = Simulator::new(Bad);
        sim.scheduler_mut().schedule(SimTime::from_nanos(10), ());
        // First event at t=10 schedules one at t=0 -> panic on processing.
        sim.step();
        sim.step();
    }
}
