//! The event loop: a time-ordered queue of model events.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A simulation model: application state plus an event handler.
///
/// The engine is generic over the event type so that models can use a plain
/// `enum` of events with no boxing on the hot path.
pub trait Model {
    /// The event alphabet of the model.
    type Event;

    /// Handles one event at simulated time `now`.
    ///
    /// The handler may schedule any number of future events through `sched`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Entry in the pending-event heap.
///
/// `seq` breaks ties between events scheduled for the same instant: events
/// fire in the order they were scheduled, which makes runs reproducible.
struct Pending<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Pending<E> {}
impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The event queue handed to [`Model::handle`] for scheduling future events.
///
/// A `Scheduler` can only insert events; popping is the engine's job. This
/// split lets the engine borrow the model mutably while the model schedules.
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<Pending<E>>>,
    next_seq: u64,
    scheduled: u64,
}

impl<E> std::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("pending", &self.heap.len())
            .field("total_scheduled", &self.scheduled)
            .finish()
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Events scheduled for the same instant fire in scheduling order.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Reverse(Pending { at, seq, event }));
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Total number of events ever scheduled.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(p)| (p.at, p.event))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(p)| p.at)
    }
}

/// The simulation engine: owns the model, the clock, and the event queue.
///
/// See the crate-level documentation for a complete example.
pub struct Simulator<M: Model> {
    model: M,
    sched: Scheduler<M::Event>,
    now: SimTime,
    processed: u64,
}

impl<M: Model> std::fmt::Debug for Simulator<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("processed", &self.processed)
            .field("pending", &self.sched.pending())
            .finish()
    }
}

impl<M: Model> Simulator<M> {
    /// Creates a simulator at time zero with an empty event queue.
    pub fn new(model: M) -> Self {
        Simulator {
            model,
            sched: Scheduler::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current simulated time (time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Exclusive access to the scheduler, e.g. to seed initial events.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<M::Event> {
        &mut self.sched
    }

    /// Runs one event. Returns `false` if the queue was empty.
    ///
    /// # Panics
    ///
    /// Panics if an event is scheduled in the past (a model bug).
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            Some((at, event)) => {
                assert!(at >= self.now, "event scheduled in the past");
                self.now = at;
                self.processed += 1;
                self.model.handle(at, event, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue is empty or the next event is after `deadline`.
    ///
    /// Events at exactly `deadline` are processed. On return the clock is
    /// the time of the last processed event (it is *not* advanced to
    /// `deadline` when the queue drains early).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(at) = self.sched.peek_time() {
            if at > deadline {
                break;
            }
            self.step();
        }
    }

    /// Consumes the simulator, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, u32)>,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.seen.push((now.as_nanos(), ev));
            if ev == 42 {
                sched.schedule(now + SimTime::from_nanos(5), 43);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new(Recorder::default());
        sim.scheduler_mut().schedule(SimTime::from_nanos(30), 3);
        sim.scheduler_mut().schedule(SimTime::from_nanos(10), 1);
        sim.scheduler_mut().schedule(SimTime::from_nanos(20), 2);
        sim.run();
        assert_eq!(sim.model().seen, vec![(10, 1), (20, 2), (30, 3)]);
        assert_eq!(sim.processed(), 3);
    }

    #[test]
    fn same_time_events_fire_in_scheduling_order() {
        let mut sim = Simulator::new(Recorder::default());
        let t = SimTime::from_nanos(7);
        for ev in 0..5 {
            sim.scheduler_mut().schedule(t, ev);
        }
        sim.run();
        let evs: Vec<u32> = sim.model().seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut sim = Simulator::new(Recorder::default());
        sim.scheduler_mut().schedule(SimTime::from_nanos(1), 42);
        sim.run();
        assert_eq!(sim.model().seen, vec![(1, 42), (6, 43)]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::new(Recorder::default());
        for i in 1..=10 {
            sim.scheduler_mut().schedule(SimTime::from_nanos(i * 10), i as u32);
        }
        sim.run_until(SimTime::from_nanos(50));
        assert_eq!(sim.model().seen.len(), 5);
        assert_eq!(sim.now(), SimTime::from_nanos(50));
        assert_eq!(sim.scheduler_mut().pending(), 5);
        sim.run();
        assert_eq!(sim.model().seen.len(), 10);
    }

    #[test]
    fn step_on_empty_queue_returns_false() {
        let mut sim = Simulator::new(Recorder::default());
        assert!(!sim.step());
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
                sched.schedule(SimTime::ZERO, ());
            }
        }
        let mut sim = Simulator::new(Bad);
        sim.scheduler_mut().schedule(SimTime::from_nanos(10), ());
        // First event at t=10 schedules one at t=0 -> panic on processing.
        sim.step();
        sim.step();
    }
}
