//! Lock-free single-producer / single-consumer rings.
//!
//! The V6 fast path (DESIGN.md §"V6 fast path") replaces the mutexed
//! `VecDeque` receive queues and channel-backed completion queues of
//! V0–V5 with fixed-capacity SPSC rings. Each ring has exactly one
//! producer thread and one consumer thread:
//!
//! * posted-receive ring: the host posts (producer), the peer NIC's
//!   engine consumes when a message arrives (consumer);
//! * completion rings: one NIC engine publishes (producer), the host
//!   reaps (consumer).
//!
//! # Memory-ordering argument
//!
//! `head` counts pops, `tail` counts pushes; both increase forever and
//! are reduced modulo the (power-of-two) capacity to index `slots`.
//!
//! * The producer writes the slot, then publishes it with a **Release**
//!   store of `tail`. The consumer's **Acquire** load of `tail`
//!   synchronizes with that store, so a consumer that observes
//!   `tail >= i + 1` also observes slot `i` fully initialised.
//! * The consumer reads the slot, then retires it with a **Release**
//!   store of `head`. The producer's **Acquire** load of `head`
//!   synchronizes with that store, so a producer that observes
//!   `head > i - capacity` may reuse slot `i mod capacity` without
//!   racing the consumer's read.
//!
//! Each index has a single writer, so no CAS is needed; both sides are
//! wait-free. The `SendRingModel` in press-analyze explores this
//! protocol exhaustively under minloom, and its weakened variants show
//! both Release stores are load-bearing.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::error::ViaError;

/// A fixed-capacity wait-free SPSC ring.
///
/// `push` and `pop` are `unsafe`: each must be called by one thread at
/// a time. [`crate::Vi`] enforces that with an [`OwnerTag`] per
/// endpoint (host side) and the one-engine-thread-per-NIC invariant
/// (engine side).
pub(crate) struct SpscRing<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Pop count. Written only by the consumer.
    head: AtomicUsize,
    /// Push count. Written only by the producer.
    tail: AtomicUsize,
    mask: usize,
}

// SAFETY: each slot belongs to exactly one side at a time (producer
// until the Release store of tail publishes it, consumer until the
// Release store of head retires it), so sharing needs only T: Send.
unsafe impl<T: Send> Sync for SpscRing<T> {}
// SAFETY: moving the ring moves the T values it owns; T: Send suffices.
unsafe impl<T: Send> Send for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// Creates a ring holding up to `capacity` items (rounded up to a
    /// power of two so indexing is a mask, not a division).
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpscRing {
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            mask: cap - 1,
        }
    }

    /// Number of items currently queued. Callable from any thread.
    pub(crate) fn len(&self) -> usize {
        // ordering: Acquire on both indices so a reader acting on the
        // count sees the slot writes behind it.
        let tail = self.tail.load(Ordering::Acquire);
        // ordering: see above.
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Producer side: push a value, failing with [`ViaError::RingFull`]
    /// when the consumer has fallen `capacity` items behind. On failure
    /// the value is returned in the error so the caller can retry.
    ///
    /// # Safety
    ///
    /// Must be called by at most one thread at a time (the producer).
    // SAFETY: contract above; Vi guards host-side calls with an
    // OwnerTag and engine-side calls run on the one engine thread.
    pub(crate) unsafe fn push(&self, value: T) -> Result<(), (ViaError, T)> {
        // ordering: Relaxed — tail is only written by this thread.
        let tail = self.tail.load(Ordering::Relaxed);
        // ordering: Acquire pairs with the consumer's Release store in
        // pop(); observing head > tail - capacity proves the consumer
        // has finished reading the slot we are about to overwrite.
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            return Err((ViaError::RingFull, value));
        }
        let slot = &self.slots[tail & self.mask];
        // SAFETY: caller is the sole producer and the head check above
        // proved the consumer retired this slot, so access is exclusive.
        unsafe { (*slot.get()).write(value) };
        // ordering: Release publishes the slot write to the consumer's
        // Acquire load of tail.
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side: pop the oldest value, if any.
    ///
    /// # Safety
    ///
    /// Must be called by at most one thread at a time (the consumer).
    // SAFETY: contract above; see `push`.
    pub(crate) unsafe fn pop(&self) -> Option<T> {
        // ordering: Relaxed — head is only written by this thread.
        let head = self.head.load(Ordering::Relaxed);
        // ordering: Acquire pairs with the producer's Release store in
        // push(); observing tail > head proves the slot is initialised.
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &self.slots[head & self.mask];
        // SAFETY: caller is the sole consumer and tail > head proved
        // the producer published this slot; reading moves the value out
        // and the Release store of head hands the slot back.
        let value = unsafe { (*slot.get()).assume_init_read() };
        // ordering: Release retires the slot so the producer's Acquire
        // load of head knows the read finished before the slot is
        // reused.
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Consumer side: pop, polling until `timeout` elapses.
    ///
    /// Completions arrive within microseconds on the in-process fabric,
    /// so the first iterations spin without sleeping; after that the
    /// loop yields so a single-core host still makes progress.
    ///
    /// # Safety
    ///
    /// Must be called by at most one thread at a time (the consumer).
    // SAFETY: contract above; see `push`.
    pub(crate) unsafe fn pop_wait(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut spins = 0u32;
        loop {
            // SAFETY: forwarded directly from this fn's own contract.
            if let Some(v) = unsafe { self.pop() } {
                return Some(v);
            }
            if Instant::now() >= deadline {
                return None;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                // press::allow(blocking-in-hot-path): pop_wait is the
                // wait primitive itself — callers opt into parking by
                // choosing it over the non-blocking `pop`.
                std::thread::yield_now();
            }
        }
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // &mut self: both sides are gone, plain loads are fine.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            let slot = self.slots[i & self.mask].get_mut();
            // SAFETY: slots in [head, tail) were published and never
            // popped; we own the ring exclusively here.
            unsafe { slot.assume_init_drop() };
        }
    }
}

/// Runtime enforcement of a ring endpoint's single-owner contract.
///
/// The intended topology dedicates one thread to each endpoint (PRESS
/// runs one send loop and one recv loop per peer), so the claim CAS is
/// uncontended and costs one atomic op. If an application shares a
/// cloned [`crate::Vi`] across threads anyway, the second caller spins
/// until the first finishes instead of corrupting the ring.
pub(crate) struct OwnerTag(AtomicBool);

impl OwnerTag {
    pub(crate) const fn new() -> Self {
        OwnerTag(AtomicBool::new(false))
    }

    /// Claims exclusive endpoint ownership until the guard drops.
    pub(crate) fn claim(&self) -> OwnerGuard<'_> {
        // ordering: Acquire pairs with the Release store in
        // OwnerGuard::drop so ring accesses by the previous owner
        // happen-before ours (test-and-set; true means already owned).
        while self.0.swap(true, Ordering::Acquire) {
            std::hint::spin_loop();
        }
        OwnerGuard(&self.0)
    }
}

pub(crate) struct OwnerGuard<'a>(&'a AtomicBool);

impl Drop for OwnerGuard<'_> {
    fn drop(&mut self) {
        // ordering: Release hands the endpoint to the next claimant.
        self.0.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let ring = SpscRing::with_capacity(4);
        for i in 0..4 {
            unsafe { ring.push(i).unwrap() };
        }
        let err = unsafe { ring.push(99) };
        assert_eq!(err, Err((ViaError::RingFull, 99)));
        for i in 0..4 {
            assert_eq!(unsafe { ring.pop() }, Some(i));
        }
        assert_eq!(unsafe { ring.pop() }, None);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let ring = SpscRing::with_capacity(5);
        for i in 0..8 {
            unsafe { ring.push(i).unwrap() };
        }
        assert_eq!(
            unsafe { ring.push(8) }.map_err(|(e, _)| e),
            Err(ViaError::RingFull)
        );
        assert_eq!(ring.len(), 8);
    }

    #[test]
    fn wraps_many_times() {
        let ring = SpscRing::with_capacity(2);
        for round in 0..1000 {
            unsafe {
                ring.push(round).unwrap();
                ring.push(round + 1).unwrap();
                assert_eq!(ring.pop(), Some(round));
                assert_eq!(ring.pop(), Some(round + 1));
            }
        }
        assert_eq!(unsafe { ring.pop() }, None);
    }

    #[test]
    fn cross_thread_transfer_preserves_order() {
        let ring = Arc::new(SpscRing::with_capacity(8));
        let tx = Arc::clone(&ring);
        let producer = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                let mut v = i;
                loop {
                    match unsafe { tx.push(v) } {
                        Ok(()) => break,
                        Err((_, back)) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expect = 0u64;
        while expect < 10_000 {
            if let Some(v) = unsafe { ring.pop_wait(Duration::from_secs(5)) } {
                assert_eq!(v, expect);
                expect += 1;
            }
        }
        producer.join().unwrap();
        assert_eq!(unsafe { ring.pop() }, None);
    }

    #[test]
    fn pop_wait_times_out_when_empty() {
        let ring = SpscRing::<u32>::with_capacity(2);
        let start = Instant::now();
        assert_eq!(unsafe { ring.pop_wait(Duration::from_millis(10)) }, None);
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn drop_releases_unpopped_items() {
        let payload = Arc::new(());
        let ring = SpscRing::with_capacity(4);
        unsafe {
            ring.push(Arc::clone(&payload)).unwrap();
            ring.push(Arc::clone(&payload)).unwrap();
        }
        drop(ring);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn owner_tag_serializes_claims() {
        let tag = Arc::new(OwnerTag::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let tag = Arc::clone(&tag);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let _own = tag.claim();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Non-atomic increment pattern stays exact only if claims
        // never overlap.
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }
}
