//! Work-queue descriptors and their completions.

use crate::mem::MemHandle;

/// A work descriptor: names the registered buffer segment taking part in
/// a send, receive, or remote write (Section 2.1: "each descriptor
/// contains all the information that the network interface controller
/// needs to process the corresponding request").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// The registered region holding (send) or receiving (recv) the data.
    pub region: MemHandle,
    /// Byte offset within the region.
    pub offset: usize,
    /// Length of the segment in bytes.
    pub len: usize,
}

impl Descriptor {
    /// Describes `len` bytes at `offset` within `region`.
    pub fn new(region: MemHandle, offset: usize, len: usize) -> Self {
        Descriptor {
            region,
            offset,
            len,
        }
    }
}

/// Maximum number of segments one scatter-gather descriptor may carry.
///
/// Fixed so an [`SgList`] is `Copy` and posting one never allocates:
/// the fast path's worst case is a response header plus three cached
/// pages, which fits in four segments.
pub const MAX_SEGMENTS: usize = 4;

/// A scatter-gather descriptor: up to [`MAX_SEGMENTS`] registered
/// segments posted as *one* work request and reported by *one*
/// completion.
///
/// V0–V5 send a header and its payload as separate descriptors (two
/// doorbells, two completions); the V6 fast path gathers them —
/// typically a slab-resident header segment plus cached-page segments
/// referenced in place — so the wire message is the concatenation of
/// the segments and only one completion is reaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SgList {
    segments: [Descriptor; MAX_SEGMENTS],
    count: u8,
}

impl SgList {
    /// Starts an empty gather list.
    pub fn new() -> Self {
        SgList {
            segments: [Descriptor::new(MemHandle(0), 0, 0); MAX_SEGMENTS],
            count: 0,
        }
    }

    /// Appends a segment, failing with [`crate::ViaError::RingFull`]
    /// once [`MAX_SEGMENTS`] are present.
    pub fn push(&mut self, segment: Descriptor) -> Result<(), crate::error::ViaError> {
        if self.count as usize == MAX_SEGMENTS {
            return Err(crate::error::ViaError::RingFull);
        }
        self.segments[self.count as usize] = segment;
        self.count += 1;
        Ok(())
    }

    /// The populated segments, in gather order.
    pub fn segments(&self) -> &[Descriptor] {
        &self.segments[..self.count as usize]
    }

    /// Number of populated segments.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether no segments have been added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total bytes across all segments — the wire length of the message.
    pub fn total_len(&self) -> usize {
        self.segments().iter().map(|s| s.len).sum()
    }

    /// The descriptor reported in this list's completion: the first
    /// segment, with `len` widened to [`SgList::total_len`] so
    /// `Completion::transferred` accounting matches single-descriptor
    /// sends.
    pub(crate) fn completion_descriptor(&self) -> Descriptor {
        let first = self.segments[0];
        Descriptor::new(first.region, first.offset, self.total_len())
    }
}

impl Default for SgList {
    fn default() -> Self {
        SgList::new()
    }
}

impl From<Descriptor> for SgList {
    fn from(d: Descriptor) -> Self {
        // Direct construction: one segment always fits, and this sits on
        // the post_send fast path where a panic arm is unacceptable.
        let mut segments = [Descriptor::new(MemHandle(0), 0, 0); MAX_SEGMENTS];
        segments[0] = d;
        SgList { segments, count: 1 }
    }
}

/// What a completed descriptor did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionKind {
    /// A send descriptor completed.
    Send,
    /// A receive descriptor completed (data arrived).
    Recv,
    /// A remote memory write completed at the sender.
    RdmaWrite,
}

/// A completed (or failed) descriptor, as delivered on a VI's done queue
/// or an attached [`crate::CompletionQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Which VI this completion belongs to (index assigned by the fabric).
    pub vi_id: u64,
    /// The original descriptor.
    pub descriptor: Descriptor,
    /// What kind of operation completed.
    pub kind: CompletionKind,
    /// Bytes actually transferred (receives may be shorter than the
    /// posted buffer).
    pub transferred: usize,
    /// `Err` carries the VIA error reported for this descriptor.
    pub status: Result<(), crate::error::ViaError>,
}

impl Completion {
    /// Whether the operation succeeded.
    pub fn is_ok(&self) -> bool {
        self.status.is_ok()
    }

    /// Bytes moved by the operation (0 on failure).
    pub fn bytes_transferred(&self) -> usize {
        if self.is_ok() {
            self.transferred
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ViaError;

    #[test]
    fn descriptor_construction() {
        let d = Descriptor::new(MemHandle(3), 16, 128);
        assert_eq!(d.region, MemHandle(3));
        assert_eq!(d.offset, 16);
        assert_eq!(d.len, 128);
    }

    #[test]
    fn sg_list_gathers_up_to_max_segments() {
        let mut sg = SgList::new();
        assert!(sg.is_empty());
        for i in 0..MAX_SEGMENTS {
            sg.push(Descriptor::new(MemHandle(1), i * 32, 32)).unwrap();
        }
        assert_eq!(
            sg.push(Descriptor::new(MemHandle(1), 512, 1)),
            Err(ViaError::RingFull)
        );
        assert_eq!(sg.len(), MAX_SEGMENTS);
        assert_eq!(sg.total_len(), 32 * MAX_SEGMENTS);
        let cd = sg.completion_descriptor();
        assert_eq!(cd.offset, 0);
        assert_eq!(cd.len, 32 * MAX_SEGMENTS);
    }

    #[test]
    fn sg_list_from_descriptor() {
        let d = Descriptor::new(MemHandle(2), 8, 40);
        let sg = SgList::from(d);
        assert_eq!(sg.segments(), &[d]);
        assert_eq!(sg.total_len(), 40);
    }

    #[test]
    fn completion_accessors() {
        let ok = Completion {
            vi_id: 1,
            descriptor: Descriptor::new(MemHandle(0), 0, 64),
            kind: CompletionKind::Recv,
            transferred: 48,
            status: Ok(()),
        };
        assert!(ok.is_ok());
        assert_eq!(ok.bytes_transferred(), 48);
        let bad = Completion {
            status: Err(ViaError::ReceiverNotReady),
            ..ok
        };
        assert!(!bad.is_ok());
        assert_eq!(bad.bytes_transferred(), 0);
    }
}
