//! Work-queue descriptors and their completions.

use crate::mem::MemHandle;

/// A work descriptor: names the registered buffer segment taking part in
/// a send, receive, or remote write (Section 2.1: "each descriptor
/// contains all the information that the network interface controller
/// needs to process the corresponding request").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// The registered region holding (send) or receiving (recv) the data.
    pub region: MemHandle,
    /// Byte offset within the region.
    pub offset: usize,
    /// Length of the segment in bytes.
    pub len: usize,
}

impl Descriptor {
    /// Describes `len` bytes at `offset` within `region`.
    pub fn new(region: MemHandle, offset: usize, len: usize) -> Self {
        Descriptor {
            region,
            offset,
            len,
        }
    }
}

/// What a completed descriptor did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionKind {
    /// A send descriptor completed.
    Send,
    /// A receive descriptor completed (data arrived).
    Recv,
    /// A remote memory write completed at the sender.
    RdmaWrite,
}

/// A completed (or failed) descriptor, as delivered on a VI's done queue
/// or an attached [`crate::CompletionQueue`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// Which VI this completion belongs to (index assigned by the fabric).
    pub vi_id: u64,
    /// The original descriptor.
    pub descriptor: Descriptor,
    /// What kind of operation completed.
    pub kind: CompletionKind,
    /// Bytes actually transferred (receives may be shorter than the
    /// posted buffer).
    pub transferred: usize,
    /// `Err` carries the VIA error reported for this descriptor.
    pub status: Result<(), crate::error::ViaError>,
}

impl Completion {
    /// Whether the operation succeeded.
    pub fn is_ok(&self) -> bool {
        self.status.is_ok()
    }

    /// Bytes moved by the operation (0 on failure).
    pub fn bytes_transferred(&self) -> usize {
        if self.is_ok() {
            self.transferred
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ViaError;

    #[test]
    fn descriptor_construction() {
        let d = Descriptor::new(MemHandle(3), 16, 128);
        assert_eq!(d.region, MemHandle(3));
        assert_eq!(d.offset, 16);
        assert_eq!(d.len, 128);
    }

    #[test]
    fn completion_accessors() {
        let ok = Completion {
            vi_id: 1,
            descriptor: Descriptor::new(MemHandle(0), 0, 64),
            kind: CompletionKind::Recv,
            transferred: 48,
            status: Ok(()),
        };
        assert!(ok.is_ok());
        assert_eq!(ok.bytes_transferred(), 48);
        let bad = Completion {
            status: Err(ViaError::ReceiverNotReady),
            ..ok
        };
        assert!(!bad.is_ok());
        assert_eq!(bad.bytes_transferred(), 0);
    }
}
