//! Window-based flow control over a VI pair.
//!
//! PRESS runs its own credit-based flow control over VIA (the paper's
//! fifth message type): a sender may only have `window` unconsumed
//! messages outstanding, and the receiver returns credits in batches as
//! it consumes them. This module packages that protocol as a reusable
//! channel — it is also what keeps reliable VIA connections from hitting
//! [`crate::ViaError::ReceiverNotReady`].

use std::time::{Duration, Instant};

use press_macros as press;

use crate::descriptor::{CompletionKind, Descriptor, SgList};
use crate::error::ViaError;
use crate::fabric::{Fabric, Nic, Reliability, Vi};
use crate::mem::MemHandle;

/// Maximum number of staged sends one doorbell ring may carry.
///
/// Fixed so the staging array lives inline in the [`Doorbell`] (no heap)
/// and a flush is a single engine op.
pub const MAX_DOORBELL: usize = 8;

/// Doorbell batching for the V6 fast path: stage up to [`MAX_DOORBELL`]
/// outgoing messages and post them with *one* doorbell ring (one engine
/// op) instead of one per message.
///
/// On real VIA hardware each posted descriptor costs a doorbell — an
/// uncached PCI write on cLAN. Coalescing N sends into one doorbell
/// amortizes that cost under load. The batch is flushed when it reaches
/// `batch` messages, when [`Doorbell::flush`] is called explicitly
/// (callers do this on credit edges and before unbatched traffic, to
/// preserve ordering), or when the oldest staged message has waited
/// longer than `max_delay` and [`Doorbell::flush_stale`] runs — so a
/// lone message is never stranded.
///
/// Messages within a batch are processed by the engine in staging order,
/// so batching never reorders completions relative to unbatched posting.
#[derive(Debug)]
pub struct Doorbell {
    vi: Vi,
    staged: [SgList; MAX_DOORBELL],
    count: u8,
    staged_bytes: u64,
    batch: u8,
    max_delay: Duration,
    oldest: Option<Instant>,
}

impl Doorbell {
    /// Creates a doorbell batcher over `vi` that flushes automatically
    /// at `batch` staged messages or once a staged message is older
    /// than `max_delay` (checked by [`Doorbell::flush_stale`]).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or exceeds [`MAX_DOORBELL`].
    pub fn new(vi: Vi, batch: usize, max_delay: Duration) -> Self {
        assert!(
            batch > 0 && batch <= MAX_DOORBELL,
            "batch must be in 1..={MAX_DOORBELL}"
        );
        Doorbell {
            vi,
            staged: [SgList::new(); MAX_DOORBELL],
            count: 0,
            staged_bytes: 0,
            batch: batch as u8,
            max_delay,
            oldest: None,
        }
    }

    /// Stages one gather list; validation happens now so errors are
    /// synchronous like [`Vi::post_send_sg`]. Returns `true` if this
    /// post triggered a flush (the batch threshold was reached).
    ///
    /// # Errors
    ///
    /// Validation errors for the staged list, or any flush error.
    #[press::hot_path]
    pub fn post_sg(&mut self, sg: SgList) -> Result<bool, ViaError> {
        self.vi.validate_sg(&sg)?;
        self.staged[self.count as usize] = sg;
        self.count += 1;
        self.staged_bytes += sg.total_len() as u64;
        if self.oldest.is_none() {
            self.oldest = Some(Instant::now());
        }
        if self.count >= self.batch {
            self.flush()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Stages a single-segment send; see [`Doorbell::post_sg`].
    ///
    /// # Errors
    ///
    /// Validation errors for the descriptor, or any flush error.
    #[press::hot_path]
    pub fn post(&mut self, desc: Descriptor) -> Result<bool, ViaError> {
        self.post_sg(SgList::from(desc))
    }

    /// Rings the doorbell: every staged message goes to the engine as a
    /// single batched op, in staging order. Returns how many messages
    /// were flushed (0 if nothing was staged).
    ///
    /// # Errors
    ///
    /// [`ViaError::Shutdown`] if the engine is gone; the staged batch is
    /// dropped in that case, like any post after shutdown.
    #[press::hot_path]
    pub fn flush(&mut self) -> Result<usize, ViaError> {
        if self.count == 0 {
            return Ok(0);
        }
        let n = self.count as usize;
        let sgs = self.staged;
        let count = self.count;
        let bytes = self.staged_bytes;
        self.count = 0;
        self.staged_bytes = 0;
        self.oldest = None;
        self.vi.post_send_batch(sgs, count, bytes)?;
        Ok(n)
    }

    /// Flushes only if the oldest staged message has waited at least
    /// `max_delay`. Callers poll this from their event loop so lightly
    /// loaded connections do not sit on a partial batch.
    ///
    /// # Errors
    ///
    /// Same as [`Doorbell::flush`].
    #[press::hot_path]
    pub fn flush_stale(&mut self) -> Result<usize, ViaError> {
        match self.oldest {
            Some(t) if t.elapsed() >= self.max_delay => self.flush(),
            _ => Ok(0),
        }
    }

    /// Number of messages currently staged.
    pub fn pending(&self) -> usize {
        self.count as usize
    }

    /// The underlying VI (for reaping completions).
    pub fn vi(&self) -> &Vi {
        &self.vi
    }
}

/// One direction of a credit-controlled message channel between two NICs.
///
/// Construction posts `window` receive buffers of `buf_bytes` each at the
/// receiving side and `window` small credit buffers at the sending side.
/// [`CreditChannel::send`] blocks (consuming returned credits) when the
/// window is exhausted; [`CreditChannel::recv`] consumes one message,
/// reposts its buffer, and returns a credit to the sender every
/// `batch` consumed messages.
///
/// # Example
///
/// ```
/// use press_via::{CreditChannel, Fabric};
/// use std::time::Duration;
///
/// # fn main() -> Result<(), press_via::ViaError> {
/// let fabric = Fabric::new();
/// let a = fabric.create_nic("a");
/// let b = fabric.create_nic("b");
/// let (mut tx, mut rx) = CreditChannel::pair(&fabric, &a, &b, 4, 2, 1024)?;
/// tx.send(b"fly, little message", Duration::from_secs(1))?;
/// let got = rx.recv(Duration::from_secs(1))?;
/// assert_eq!(&got, b"fly, little message");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CreditChannel {
    vi: Vi,
    side: Side,
}

#[derive(Debug)]
enum Side {
    Sender {
        credits: u32,
        send_region: MemHandle,
        buf_bytes: usize,
        next_slot: usize,
        window: u32,
        outstanding_sends: u32,
    },
    Receiver {
        recv_region: MemHandle,
        ack_region: MemHandle,
        buf_bytes: usize,
        consumed_since_credit: u32,
        batch: u32,
        outstanding_acks: u32,
    },
}

impl CreditChannel {
    /// Builds a sender/receiver pair with `window` outstanding-message
    /// credits, credit batches of `batch`, and `buf_bytes` per message.
    ///
    /// # Errors
    ///
    /// Propagates registration/posting failures from the fabric.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`, `batch == 0`, `batch > window`, or
    /// `window % batch != 0` (credits would leak otherwise).
    pub fn pair(
        fabric: &Fabric,
        a: &Nic,
        b: &Nic,
        window: u32,
        batch: u32,
        buf_bytes: usize,
    ) -> Result<(CreditChannel, CreditChannel), ViaError> {
        assert!(window > 0 && batch > 0, "window and batch must be positive");
        assert!(batch <= window, "batch cannot exceed the window");
        assert_eq!(window % batch, 0, "window must be a multiple of batch");
        let (vi_a, vi_b) = fabric.connect(a, b, Reliability::ReliableDelivery)?;

        // Sender side: staging buffers for outgoing messages, and small
        // buffers to receive credit returns into.
        let send_region = a.register(vec![0; buf_bytes * window as usize], false)?;
        let credit_region = a.register(vec![0; 4 * window as usize], false)?;
        for i in 0..window as usize {
            vi_a.post_recv(Descriptor::new(credit_region, i * 4, 4))?;
        }

        // Receiver side: data buffers, and a tiny region to send credit
        // messages from.
        let recv_region = b.register(vec![0; buf_bytes * window as usize], false)?;
        let ack_region = b.register(vec![0; 4], false)?;
        for i in 0..window as usize {
            vi_b.post_recv(Descriptor::new(recv_region, i * buf_bytes, buf_bytes))?;
        }

        Ok((
            CreditChannel {
                vi: vi_a,
                side: Side::Sender {
                    credits: window,
                    send_region,
                    buf_bytes,
                    next_slot: 0,
                    window,
                    outstanding_sends: 0,
                },
            },
            CreditChannel {
                vi: vi_b,
                side: Side::Receiver {
                    recv_region,
                    ack_region,
                    buf_bytes,
                    consumed_since_credit: 0,
                    batch,
                    outstanding_acks: 0,
                },
            },
        ))
    }

    /// Sends `data`, blocking for returned credits if the window is full.
    ///
    /// # Errors
    ///
    /// * [`ViaError::RecvBufferTooSmall`] if `data` exceeds the buffer size;
    /// * [`ViaError::Timeout`] if no credit returns in time;
    /// * fabric errors from the underlying post.
    ///
    /// # Panics
    ///
    /// Panics if called on the receiving side.
    pub fn send(&mut self, data: &[u8], timeout: Duration) -> Result<(), ViaError> {
        let vi = self.vi.clone();
        let Side::Sender {
            credits,
            send_region,
            buf_bytes,
            next_slot,
            window,
            outstanding_sends,
            ..
        } = &mut self.side
        else {
            panic!("send called on the receiving side");
        };
        if data.len() > *buf_bytes {
            return Err(ViaError::RecvBufferTooSmall);
        }
        while *credits == 0 {
            // Wait for a credit-return message.
            let c = vi.wait_recv_completion(timeout)?;
            if c.is_ok() {
                *credits += u32::from_le_bytes(read_credit(&vi, &c)?);
            }
        }
        // Reap send completions opportunistically so the queue can't grow
        // without bound.
        while let Some(_c) = try_send_completion(&vi) {
            *outstanding_sends = outstanding_sends.saturating_sub(1);
        }
        let slot = *next_slot;
        *next_slot = (*next_slot + 1) % *window as usize;
        let offset = slot * *buf_bytes;
        nic_write(&vi, *send_region, offset, data)?;
        vi.post_send(Descriptor::new(*send_region, offset, data.len()))?;
        *credits -= 1;
        *outstanding_sends += 1;
        Ok(())
    }

    /// Receives the next message, reposting its buffer and returning
    /// credits every `batch` messages.
    ///
    /// # Errors
    ///
    /// * [`ViaError::Timeout`] if nothing arrives in time;
    /// * the completion's error if the transfer failed.
    ///
    /// # Panics
    ///
    /// Panics if called on the sending side.
    pub fn recv(&mut self, timeout: Duration) -> Result<Vec<u8>, ViaError> {
        let vi = self.vi.clone();
        let Side::Receiver {
            recv_region,
            ack_region,
            buf_bytes,
            consumed_since_credit,
            batch,
            outstanding_acks,
        } = &mut self.side
        else {
            panic!("recv called on the sending side");
        };
        let c = vi.wait_recv_completion(timeout)?;
        c.status?;
        let data = nic_read(&vi, c.descriptor.region, c.descriptor.offset, c.transferred)?;
        // Repost the consumed buffer.
        vi.post_recv(Descriptor::new(
            *recv_region,
            c.descriptor.offset,
            *buf_bytes,
        ))?;
        *consumed_since_credit += 1;
        if *consumed_since_credit >= *batch {
            nic_write(&vi, *ack_region, 0, &consumed_since_credit.to_le_bytes())?;
            vi.post_send(Descriptor::new(*ack_region, 0, 4))?;
            *consumed_since_credit = 0;
            *outstanding_acks += 1;
            // Reap ack-send completions.
            while let Some(_c) = try_send_completion(&vi) {
                *outstanding_acks = outstanding_acks.saturating_sub(1);
            }
        }
        Ok(data)
    }
}

fn try_send_completion(vi: &Vi) -> Option<crate::descriptor::Completion> {
    // Send completions share the send_done queue for both plain sends and
    // credit acks; reap without blocking.
    match vi.wait_send_completion(Duration::from_millis(0)) {
        Ok(c) if c.kind == CompletionKind::Send || c.kind == CompletionKind::RdmaWrite => Some(c),
        _ => None,
    }
}

fn read_credit(vi: &Vi, c: &crate::descriptor::Completion) -> Result<[u8; 4], ViaError> {
    let bytes = nic_read(vi, c.descriptor.region, c.descriptor.offset, 4)?;
    // Repost the credit buffer for the next return.
    vi.post_recv(Descriptor::new(c.descriptor.region, c.descriptor.offset, 4))?;
    Ok([bytes[0], bytes[1], bytes[2], bytes[3]])
}

// The channel needs region access through the Vi's owning NIC; expose the
// two helpers crate-internally on Vi.
fn nic_read(vi: &Vi, region: MemHandle, offset: usize, len: usize) -> Result<Vec<u8>, ViaError> {
    vi.region_read(region, offset, len)
}

fn nic_write(vi: &Vi, region: MemHandle, offset: usize, data: &[u8]) -> Result<(), ViaError> {
    vi.region_write(region, offset, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_secs(2);

    fn setup(window: u32, batch: u32, buf: usize) -> (Nic, Nic, CreditChannel, CreditChannel) {
        let fabric = Fabric::new();
        let a = fabric.create_nic("a");
        let b = fabric.create_nic("b");
        let (tx, rx) = CreditChannel::pair(&fabric, &a, &b, window, batch, buf).expect("pair");
        (a, b, tx, rx)
    }

    #[test]
    fn messages_flow_in_order() {
        let (_a, _b, mut tx, mut rx) = setup(4, 2, 64);
        for i in 0..10u8 {
            tx.send(&[i; 8], T).unwrap();
            let got = rx.recv(T).unwrap();
            assert_eq!(got, vec![i; 8]);
        }
    }

    #[test]
    fn window_blocks_until_credits_return() {
        let (_a, _b, mut tx, mut rx) = setup(2, 2, 32);
        tx.send(b"one", T).unwrap();
        tx.send(b"two", T).unwrap();
        // Window exhausted; no recv happened, so the next send times out.
        let err = tx.send(b"three", Duration::from_millis(100));
        assert_eq!(err, Err(ViaError::Timeout));
        // Consuming both returns a credit batch and unblocks the sender.
        assert_eq!(rx.recv(T).unwrap(), b"one");
        assert_eq!(rx.recv(T).unwrap(), b"two");
        tx.send(b"three", T).unwrap();
        assert_eq!(rx.recv(T).unwrap(), b"three");
    }

    #[test]
    fn oversized_message_rejected() {
        let (_a, _b, mut tx, _rx) = setup(2, 1, 16);
        assert_eq!(tx.send(&[0; 17], T), Err(ViaError::RecvBufferTooSmall));
    }

    #[test]
    fn sustained_traffic_across_threads() {
        let (_a, _b, mut tx, mut rx) = setup(8, 4, 128);
        let producer = std::thread::spawn(move || {
            for i in 0..500u32 {
                tx.send(&i.to_le_bytes(), Duration::from_secs(10)).unwrap();
            }
        });
        for expected in 0..500u32 {
            let got = rx.recv(Duration::from_secs(10)).unwrap();
            let v = u32::from_le_bytes([got[0], got[1], got[2], got[3]]);
            assert_eq!(v, expected);
        }
        producer.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "multiple of batch")]
    fn window_must_be_multiple_of_batch() {
        let fabric = Fabric::new();
        let a = fabric.create_nic("a");
        let b = fabric.create_nic("b");
        let _ = CreditChannel::pair(&fabric, &a, &b, 5, 2, 64);
    }

    #[test]
    #[should_panic(expected = "receiving side")]
    fn send_on_receiver_panics() {
        let (_a, _b, _tx, mut rx) = setup(2, 1, 16);
        let _ = rx.send(b"nope", T);
    }

    fn doorbell_setup(batch: usize, max_delay: Duration) -> (Nic, Nic, Doorbell, Vi, MemHandle) {
        let fabric = Fabric::new();
        let a = fabric.create_nic("a");
        let b = fabric.create_nic("b");
        let (va, vb) = fabric
            .connect(&a, &b, Reliability::ReliableDelivery)
            .expect("connect");
        let ma = a.register((0..=255).collect(), false).expect("register");
        let mb = b.register(vec![0; 4096], false).expect("register");
        for i in 0..MAX_DOORBELL {
            vb.post_recv(Descriptor::new(mb, i * 64, 64)).expect("post");
        }
        let bell = Doorbell::new(va, batch, max_delay);
        let _ = ma;
        (a, b, bell, vb, ma)
    }

    #[test]
    fn doorbell_flushes_at_batch_threshold() {
        let (_a, b, mut bell, vb, ma) = doorbell_setup(3, Duration::from_secs(3600));
        assert!(!bell.post(Descriptor::new(ma, 0, 8)).unwrap());
        assert!(!bell.post(Descriptor::new(ma, 8, 8)).unwrap());
        assert_eq!(bell.pending(), 2);
        let flushed = bell.post(Descriptor::new(ma, 16, 8)).unwrap();
        assert!(flushed, "third post reaches the batch threshold");
        assert_eq!(bell.pending(), 0);
        // All three arrive, in staging order.
        for i in 0..3u8 {
            let c = vb.wait_recv_completion(T).unwrap();
            assert_eq!(c.bytes_transferred(), 8);
            let got = b
                .read_region(c.descriptor.region, c.descriptor.offset, 8)
                .unwrap();
            assert_eq!(got[0], i * 8, "batch preserves staging order");
        }
    }

    #[test]
    fn doorbell_explicit_flush_drains_partial_batch() {
        let (_a, _b, mut bell, vb, ma) = doorbell_setup(MAX_DOORBELL, Duration::from_secs(3600));
        bell.post(Descriptor::new(ma, 0, 4)).unwrap();
        bell.post(Descriptor::new(ma, 4, 4)).unwrap();
        assert_eq!(bell.flush().unwrap(), 2);
        assert_eq!(bell.flush().unwrap(), 0, "nothing staged after a flush");
        assert!(vb.wait_recv_completion(T).unwrap().is_ok());
        assert!(vb.wait_recv_completion(T).unwrap().is_ok());
    }

    #[test]
    fn doorbell_validates_at_staging_time() {
        let (_a, _b, mut bell, _vb, ma) = doorbell_setup(4, Duration::from_secs(3600));
        assert_eq!(
            bell.post(Descriptor::new(ma, 250, 16)),
            Err(ViaError::OutOfBounds)
        );
        assert_eq!(bell.pending(), 0, "invalid descriptors are not staged");
    }
}
