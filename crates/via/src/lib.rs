//! A software implementation of the Virtual Interface Architecture (VIA)
//! subset that PRESS depends on.
//!
//! The paper's cluster uses Giganet cLAN hardware VIA. This crate
//! reproduces the *semantics* of that substrate in software, over an
//! in-process fabric, so that the communication patterns of PRESS — and
//! their failure modes — can be exercised for real:
//!
//! * **Virtual Interfaces** ([`Vi`]): connected endpoint pairs with send
//!   and receive work queues (Section 2.1);
//! * **descriptors** ([`Descriptor`]): posted to the queues, processed
//!   asynchronously by the NIC engine, marked complete ([`Completion`]);
//! * **memory registration** ([`Nic::register`]): every buffer taking
//!   part in a transfer must be registered first;
//! * **remote memory writes** ([`Vi::rdma_write`]): data lands in the
//!   peer's registered region without any receiver involvement — exactly
//!   the primitive versions V1–V5 of PRESS exploit (Giganet supports
//!   remote writes but not remote reads, and neither do we);
//! * **completion queues** ([`CompletionQueue`]): aggregate completions
//!   of multiple VIs;
//! * **reliability levels** ([`Reliability`]): unreliable delivery drops
//!   messages silently (fault injection hooks included); reliable
//!   delivery guarantees in-order exactly-once delivery and surfaces
//!   errors — e.g. sending with no posted receive descriptor.
//!
//! # Example
//!
//! ```
//! use press_via::{Fabric, Descriptor, Reliability};
//!
//! # fn main() -> Result<(), press_via::ViaError> {
//! let fabric = Fabric::new();
//! let nic_a = fabric.create_nic("a");
//! let nic_b = fabric.create_nic("b");
//! let mr_a = nic_a.register(vec![42u8; 1024], false)?;
//! let mr_b = nic_b.register(vec![0u8; 1024], false)?;
//! let (vi_a, vi_b) = fabric.connect(&nic_a, &nic_b, Reliability::ReliableDelivery)?;
//!
//! vi_b.post_recv(Descriptor::new(mr_b, 0, 1024))?;
//! vi_a.post_send(Descriptor::new(mr_a, 0, 512))?;
//!
//! let sent = vi_a.wait_send_completion(std::time::Duration::from_secs(1))?;
//! assert!(sent.is_ok());
//! let recvd = vi_b.wait_recv_completion(std::time::Duration::from_secs(1))?;
//! assert_eq!(recvd.bytes_transferred(), 512);
//! assert_eq!(nic_b.read_region(mr_b, 0, 4)?, vec![42u8; 4]);
//! # Ok(())
//! # }
//! ```

// Any future unsafe fn must scope its unsafe operations explicitly.
#![deny(unsafe_op_in_unsafe_fn)]
mod descriptor;
mod error;
mod fabric;
mod flow;
mod mem;
mod spsc;

pub use descriptor::{Completion, CompletionKind, Descriptor, SgList, MAX_SEGMENTS};
pub use error::ViaError;
pub use fabric::{CompletionQueue, Fabric, FaultConfig, Nic, Reliability, RemoteBuffer, Vi};
pub use flow::{CreditChannel, Doorbell, MAX_DOORBELL};
pub use mem::{MemHandle, SlabPool, SlabSlot};
