//! The in-process fabric: NICs, VIs, completion queues, and the engine
//! threads that process posted descriptors asynchronously.
//!
//! # Fast-path concurrency (V6)
//!
//! The send/recv/completion paths are lock-free: posted receives and
//! completions travel through [`SpscRing`]s (see `spsc.rs` for the
//! memory-ordering argument) instead of mutexed queues or channels.
//! Each ring's producer and consumer are single threads by topology —
//! one engine thread per NIC, one host loop per endpoint — and the
//! host side is additionally guarded by an [`OwnerTag`] so a cloned
//! [`Vi`] shared across threads degrades to serialized access instead
//! of unsoundness. The control plane (region registration, VI table,
//! fault configuration) stays behind read-write locks: it is off the
//! per-message path, and message processing takes only read locks
//! there. Message payloads move region-to-region in one copy — the
//! per-send staging allocation of V0–V5 is gone.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use press_macros as press;
use press_telem::{EventKind, TraceHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::descriptor::MAX_SEGMENTS;
use crate::descriptor::{Completion, CompletionKind, Descriptor, SgList};
use crate::error::ViaError;
use crate::flow::MAX_DOORBELL;
use crate::mem::{MemHandle, Region, SlabPool};
use crate::spsc::{OwnerTag, SpscRing};

/// Capacity of each VI's posted-receive ring.
const RECV_RING_CAP: usize = 1024;
/// Capacity of each VI's send/recv completion rings.
const DONE_RING_CAP: usize = 1024;

/// VIA reliability levels (Section 2.1). Giganet VIA — and this fabric —
/// supports unreliable and reliable delivery, but not reliable reception.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reliability {
    /// Messages (regular and remote writes) may be lost without being
    /// detected or retransmitted; sends still complete successfully.
    UnreliableDelivery,
    /// Data arrives exactly once and in order in the absence of errors;
    /// errors (e.g. no receive descriptor posted) are reported.
    ReliableDelivery,
}

/// Fault injection for a NIC's outgoing traffic.
///
/// Drops apply only to unreliable connections (reliable connections
/// ignore the probability, as real VIA hardware retransmits under the
/// covers). Failures apply to *any* connection: the posted descriptor
/// completes with [`ViaError::NotConnected`] status, modeling a peer
/// whose VI was torn down by a crash — the error path PRESS's recovery
/// machinery must handle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability in `[0, 1]` that an outgoing message is dropped.
    pub drop_probability: f64,
    /// Probability in `[0, 1]` that an outgoing send or RDMA write
    /// completes with error status instead of being delivered.
    pub fail_probability: f64,
    /// RNG seed for reproducible drop/failure patterns.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_probability: 0.0,
            fail_probability: 0.0,
            seed: 0,
        }
    }
}

/// A remote region target for [`Vi::rdma_write`]: the peer communicates
/// its registered handle (and the writer an offset) out of band, exactly
/// as PRESS exchanges circular-buffer locations at startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteBuffer {
    /// The peer's registered region.
    pub region: MemHandle,
    /// Byte offset within the peer's region.
    pub offset: usize,
}

// A SendBatch carries its staged gathers inline: ~1 KiB moved through
// the channel per doorbell, deliberately, so flushing never allocates.
#[allow(clippy::large_enum_variant)]
enum EngineOp {
    Send {
        vi: u64,
        sg: SgList,
    },
    SendBatch {
        vi: u64,
        sgs: [SgList; MAX_DOORBELL],
        count: u8,
    },
    Rdma {
        vi: u64,
        desc: Descriptor,
        remote: RemoteBuffer,
    },
    Stop,
}

struct ViShared {
    id: u64,
    reliability: Reliability,
    /// The connected peer, fixed at connect time.
    peer: Option<(Weak<NicShared>, u64)>,
    /// Posted receive descriptors. Producer: the host (guarded by
    /// `recv_post`); consumer: the peer NIC's engine thread.
    recv_ring: SpscRing<Descriptor>,
    recv_post: OwnerTag,
    /// Send/RDMA completions. Producer: the owning NIC's engine;
    /// consumer: the host (guarded by `send_reap`).
    send_done: SpscRing<Completion>,
    send_reap: OwnerTag,
    /// Receive completions. Producer: the peer NIC's engine; consumer:
    /// the host (guarded by `recv_reap`).
    recv_done: SpscRing<Completion>,
    recv_reap: OwnerTag,
    /// When attached, completions go to the CQ instead of the VI rings.
    cq: Option<Sender<Completion>>,
}

/// Engine-side ring publish with backpressure: the host reaps within
/// its flow-control window, so a full ring means the consumer is
/// merely behind — yield until space opens, bailing out on teardown.
fn engine_push(nic: &NicShared, ring: &SpscRing<Completion>, c: Completion) {
    let mut c = c;
    loop {
        // SAFETY: each completion ring has exactly one producing engine
        // thread (own engine for send_done, the single peer's engine
        // for recv_done); this fn is only called from that thread.
        match unsafe { ring.push(c) } {
            Ok(()) => return,
            Err((_, back)) => {
                // ordering: Acquire pairs with the Release store in
                // `Drop for Nic` — don't spin on a ring whose consumer
                // is being torn down.
                if nic.shutdown.load(Ordering::Acquire) {
                    return;
                }
                c = back;
                // press::allow(blocking-in-hot-path): bounded producer
                // backoff while the consumer drains the ring — a yield,
                // not a park, and only on the ring-full slow branch.
                std::thread::yield_now();
            }
        }
    }
}

impl ViShared {
    /// Engine-side: deliver a send/RDMA completion. `nic` is the NIC
    /// owning this VI (whose engine is the sole producer).
    fn complete_send(&self, nic: &NicShared, c: Completion) {
        match &self.cq {
            Some(cq) => {
                let _ = cq.send(c);
            }
            None => engine_push(nic, &self.send_done, c),
        }
    }

    /// Engine-side: deliver a receive completion. `nic` is the NIC
    /// owning this VI; the producer is its single peer's engine.
    fn complete_recv(&self, nic: &NicShared, c: Completion) {
        match &self.cq {
            Some(cq) => {
                let _ = cq.send(c);
            }
            None => engine_push(nic, &self.recv_done, c),
        }
    }

    /// Engine-side: consume the next posted receive descriptor.
    fn pop_posted_recv(&self) -> Option<Descriptor> {
        // SAFETY: a VI has exactly one peer, so only that peer NIC's
        // engine thread (the caller) consumes this ring.
        unsafe { self.recv_ring.pop() }
    }
}

struct NicShared {
    #[allow(dead_code)]
    name: String,
    regions: RwLock<HashMap<u64, Region>>,
    vis: RwLock<HashMap<u64, Arc<ViShared>>>,
    ops: Sender<EngineOp>,
    /// Fast-path gate for fault injection: when clear (the default),
    /// `should_drop`/`should_fail` return without touching the mutex.
    fault_active: AtomicBool,
    fault: Mutex<(FaultConfig, StdRng)>,
    shutdown: AtomicBool,
    /// Telemetry hook, installed at most once via [`Nic::set_tracer`].
    /// Posting threads and the engine thread share the handle; when unset
    /// the instrumentation reduces to one `OnceLock::get` branch.
    trace: OnceLock<TraceHandle>,
}

impl NicShared {
    fn region(&self, h: MemHandle) -> Result<Region, ViaError> {
        self.regions
            // press::allow(blocking-in-hot-path): registration-time
            // map — written only by register/deregister on the control
            // path, so the read lock is uncontended during transfers.
            .read()
            .get(&h.0)
            .cloned()
            .ok_or(ViaError::UnknownRegion)
    }

    fn validate(&self, d: &Descriptor) -> Result<Region, ViaError> {
        let r = self.region(d.region)?;
        if d.offset + d.len > r.len() {
            return Err(ViaError::OutOfBounds);
        }
        Ok(r)
    }

    fn should_drop(&self) -> bool {
        // ordering: Acquire pairs with the Release store in `set_fault`
        // so a set flag implies the config behind it is visible.
        if !self.fault_active.load(Ordering::Acquire) {
            return false;
        }
        // press::allow(blocking-in-hot-path): behind the fault_active
        // gate above — the lock is only ever taken with faults armed,
        // i.e. in chaos runs, never on the production fast path.
        let mut g = self.fault.lock();
        let p = g.0.drop_probability;
        p > 0.0 && g.1.gen::<f64>() < p
    }

    fn should_fail(&self) -> bool {
        // ordering: Acquire — as in `should_drop`.
        if !self.fault_active.load(Ordering::Acquire) {
            return false;
        }
        // press::allow(blocking-in-hot-path): behind the fault_active
        // gate above — see `should_drop`.
        let mut g = self.fault.lock();
        let p = g.0.fail_probability;
        p > 0.0 && g.1.gen::<f64>() < p
    }

    /// Records one instant telemetry event if a tracer is installed.
    fn trace_event(&self, kind: EventKind, req: u64, a: u64, b: u64) {
        if let Some(t) = self.trace.get() {
            t.instant(kind, req, a, b);
        }
    }
}

/// The in-process network connecting NICs.
///
/// See the crate-level example for typical use.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

struct FabricInner {
    next_mr: AtomicU64,
    next_vi: AtomicU64,
}

impl Default for Fabric {
    fn default() -> Self {
        Fabric::new()
    }
}

impl Fabric {
    /// Creates an empty fabric.
    pub fn new() -> Self {
        Fabric {
            inner: Arc::new(FabricInner {
                next_mr: AtomicU64::new(1),
                next_vi: AtomicU64::new(1),
            }),
        }
    }

    /// Creates a NIC on this fabric, spawning its engine thread.
    pub fn create_nic(&self, name: &str) -> Nic {
        let (tx, rx) = unbounded();
        let shared = Arc::new(NicShared {
            name: name.to_string(),
            regions: RwLock::new(HashMap::new()),
            vis: RwLock::new(HashMap::new()),
            ops: tx,
            fault_active: AtomicBool::new(false),
            fault: Mutex::new((FaultConfig::default(), StdRng::seed_from_u64(0))),
            shutdown: AtomicBool::new(false),
            trace: OnceLock::new(),
        });
        let engine_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("via-nic-{name}"))
            .spawn(move || engine_loop(engine_shared, rx))
            .expect("spawn nic engine thread");
        Nic {
            fabric: self.clone(),
            shared,
            engine: Some(handle),
        }
    }

    /// Connects a fresh VI pair between two NICs, returning the two
    /// endpoints. The connection is bidirectional.
    pub fn connect(
        &self,
        a: &Nic,
        b: &Nic,
        reliability: Reliability,
    ) -> Result<(Vi, Vi), ViaError> {
        self.connect_inner(a, b, reliability, None, None)
    }

    /// Like [`Fabric::connect`] but directing each endpoint's completions
    /// to a [`CompletionQueue`] (pass `None` to keep per-VI queues).
    pub fn connect_with_cqs(
        &self,
        a: &Nic,
        b: &Nic,
        reliability: Reliability,
        cq_a: Option<&CompletionQueue>,
        cq_b: Option<&CompletionQueue>,
    ) -> Result<(Vi, Vi), ViaError> {
        self.connect_inner(a, b, reliability, cq_a, cq_b)
    }

    fn connect_inner(
        &self,
        a: &Nic,
        b: &Nic,
        reliability: Reliability,
        cq_a: Option<&CompletionQueue>,
        cq_b: Option<&CompletionQueue>,
    ) -> Result<(Vi, Vi), ViaError> {
        // ordering: Relaxed — unique-id allocation; RMW atomicity alone
        // guarantees distinct ids, nothing else is published through it.
        let id_a = self.inner.next_vi.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — as for `id_a`.
        let id_b = self.inner.next_vi.fetch_add(1, Ordering::Relaxed);
        let vi_a = Arc::new(ViShared {
            id: id_a,
            reliability,
            peer: Some((Arc::downgrade(&b.shared), id_b)),
            recv_ring: SpscRing::with_capacity(RECV_RING_CAP),
            recv_post: OwnerTag::new(),
            send_done: SpscRing::with_capacity(DONE_RING_CAP),
            send_reap: OwnerTag::new(),
            recv_done: SpscRing::with_capacity(DONE_RING_CAP),
            recv_reap: OwnerTag::new(),
            cq: cq_a.map(|c| c.tx.clone()),
        });
        let vi_b = Arc::new(ViShared {
            id: id_b,
            reliability,
            peer: Some((Arc::downgrade(&a.shared), id_a)),
            recv_ring: SpscRing::with_capacity(RECV_RING_CAP),
            recv_post: OwnerTag::new(),
            send_done: SpscRing::with_capacity(DONE_RING_CAP),
            send_reap: OwnerTag::new(),
            recv_done: SpscRing::with_capacity(DONE_RING_CAP),
            recv_reap: OwnerTag::new(),
            cq: cq_b.map(|c| c.tx.clone()),
        });
        a.shared.vis.write().insert(id_a, Arc::clone(&vi_a));
        b.shared.vis.write().insert(id_b, Arc::clone(&vi_b));
        Ok((
            Vi {
                shared: vi_a,
                nic: Arc::clone(&a.shared),
            },
            Vi {
                shared: vi_b,
                nic: Arc::clone(&b.shared),
            },
        ))
    }

    fn next_mr(&self) -> u64 {
        // ordering: Relaxed — unique-id allocation, as for `next_vi`.
        self.inner.next_mr.fetch_add(1, Ordering::Relaxed)
    }
}

/// A network interface: owns registered memory and an engine thread that
/// asynchronously processes posted descriptors.
pub struct Nic {
    fabric: Fabric,
    shared: Arc<NicShared>,
    engine: Option<JoinHandle<()>>,
}

impl Nic {
    /// Registers `data` as a memory region. `allow_remote_write` grants
    /// peers RDMA-write access (PRESS enables it for its circular
    /// buffers, and for all cache pages in version V5).
    pub fn register(&self, data: Vec<u8>, allow_remote_write: bool) -> Result<MemHandle, ViaError> {
        let h = self.fabric.next_mr();
        self.shared
            .regions
            .write()
            .insert(h, Region::new(data, allow_remote_write));
        Ok(MemHandle(h))
    }

    /// Registers one zeroed region of `slots * slot_len` bytes and
    /// carves it into a [`SlabPool`] of fixed-size send buffers — the
    /// V6 fast path's zero-allocation message staging.
    ///
    /// # Panics
    ///
    /// Panics if `slots` or `slot_len` is zero.
    pub fn register_slab(
        &self,
        slots: usize,
        slot_len: usize,
        allow_remote_write: bool,
    ) -> Result<SlabPool, ViaError> {
        assert!(
            slots > 0 && slot_len > 0,
            "slab dimensions must be positive"
        );
        let h = self.register(vec![0; slots * slot_len], allow_remote_write)?;
        Ok(SlabPool::over_region(h, slots, slot_len))
    }

    /// Deregisters a region. Outstanding descriptors naming it will fail.
    pub fn deregister(&self, h: MemHandle) -> Result<(), ViaError> {
        self.shared
            .regions
            .write()
            .remove(&h.0)
            .map(|_| ())
            .ok_or(ViaError::UnknownRegion)
    }

    /// Copies `len` bytes out of a registered region (a test/debug aid;
    /// a real application reads its own memory directly).
    pub fn read_region(
        &self,
        h: MemHandle,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, ViaError> {
        let r = self.shared.region(h)?;
        let bytes = r.bytes.read();
        if offset + len > bytes.len() {
            return Err(ViaError::OutOfBounds);
        }
        Ok(bytes[offset..offset + len].to_vec())
    }

    /// Writes bytes into a registered region (local access; tests and
    /// senders preparing buffers).
    pub fn write_region(&self, h: MemHandle, offset: usize, data: &[u8]) -> Result<(), ViaError> {
        let r = self.shared.region(h)?;
        let mut bytes = r.bytes.write();
        if offset + data.len() > bytes.len() {
            return Err(ViaError::OutOfBounds);
        }
        bytes[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Configures fault injection for this NIC's outgoing messages.
    pub fn set_fault(&self, cfg: FaultConfig) {
        *self.shared.fault.lock() = (cfg, StdRng::seed_from_u64(cfg.seed));
        let active = cfg.drop_probability > 0.0 || cfg.fail_probability > 0.0;
        // ordering: Release pairs with the Acquire loads in
        // `should_drop`/`should_fail`: the flag is published after the
        // config write above.
        self.shared.fault_active.store(active, Ordering::Release);
    }

    /// Installs a telemetry handle: descriptor posts and completions on
    /// this NIC are recorded as `via`-category instants. At most one
    /// tracer can be installed; later calls are ignored. With no tracer
    /// the hot paths pay a single lock-free branch.
    pub fn set_tracer(&self, handle: TraceHandle) {
        let _ = self.shared.trace.set(handle);
    }
}

impl std::fmt::Debug for Nic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nic")
            .field("name", &self.shared.name)
            .field("regions", &self.shared.regions.read().len())
            .field("vis", &self.shared.vis.read().len())
            .finish()
    }
}

impl Drop for Nic {
    fn drop(&mut self) {
        // ordering: Release — pairs with the engine thread's Acquire
        // loads; all descriptor state mutated before the drop is visible
        // to the engine before it observes the stop flag.
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = self.shared.ops.send(EngineOp::Stop);
        if let Some(h) = self.engine.take() {
            let _ = h.join();
        }
    }
}

/// One endpoint of a connected Virtual Interface pair.
#[derive(Clone)]
pub struct Vi {
    shared: Arc<ViShared>,
    nic: Arc<NicShared>,
}

impl Vi {
    /// This endpoint's fabric-wide id (used in [`Completion::vi_id`]).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Posts a receive descriptor. Arriving messages consume descriptors
    /// in FIFO order.
    ///
    /// # Errors
    ///
    /// Fails if the descriptor's region is unknown or out of bounds, or
    /// with [`ViaError::RingFull`] if the posted-receive ring is full.
    #[press::hot_path]
    pub fn post_recv(&self, desc: Descriptor) -> Result<(), ViaError> {
        self.nic.validate(&desc)?;
        let _own = self.shared.recv_post.claim();
        // SAFETY: the owner tag above makes this thread the ring's sole
        // producer for the duration of the push.
        unsafe { self.shared.recv_ring.push(desc).map_err(|(e, _)| e) }
    }

    /// Posts a send descriptor; the NIC engine transfers the segment to
    /// the peer's next posted receive descriptor.
    ///
    /// # Errors
    ///
    /// Fails immediately if the region is unknown/out of bounds or the
    /// engine has shut down. Delivery errors are reported through the
    /// completion.
    #[press::hot_path]
    pub fn post_send(&self, desc: Descriptor) -> Result<(), ViaError> {
        // ordering: Acquire — pairs with the Release store in
        // `Drop for Nic`; a post racing teardown either sees the flag
        // or its op lands before the engine drains.
        if self.nic.shutdown.load(Ordering::Acquire) {
            return Err(ViaError::Shutdown);
        }
        self.nic.validate(&desc)?;
        self.nic
            .trace_event(EventKind::ViaPost, self.shared.id, desc.len as u64, 0);
        self.nic
            .ops
            .send(EngineOp::Send {
                vi: self.shared.id,
                sg: SgList::from(desc),
            })
            .map_err(|_| ViaError::Shutdown)
    }

    /// Posts a scatter-gather send: up to [`crate::MAX_SEGMENTS`]
    /// registered segments go out as one message, reported by one
    /// completion whose descriptor covers the first segment widened to
    /// the gather's total length.
    ///
    /// # Errors
    ///
    /// Fails immediately if the list is empty, any segment is
    /// unknown/out of bounds, or the engine has shut down.
    #[press::hot_path]
    pub fn post_send_sg(&self, sg: SgList) -> Result<(), ViaError> {
        // ordering: Acquire — same teardown contract as `post_send`.
        if self.nic.shutdown.load(Ordering::Acquire) {
            return Err(ViaError::Shutdown);
        }
        self.validate_sg(&sg)?;
        let total = sg.total_len() as u64;
        self.nic
            .trace_event(EventKind::ViaPost, self.shared.id, total, sg.len() as u64);
        self.nic
            .ops
            .send(EngineOp::Send {
                vi: self.shared.id,
                sg,
            })
            .map_err(|_| ViaError::Shutdown)
    }

    /// Crate-internal batched post used by [`crate::Doorbell`]: all
    /// `count` gathers ride one engine op (one doorbell). Segments were
    /// validated when staged. The ViaPost trace event carries the batch
    /// size so doorbell coalescing is visible in traces.
    #[press::hot_path]
    pub(crate) fn post_send_batch(
        &self,
        sgs: [SgList; MAX_DOORBELL],
        count: u8,
        total_bytes: u64,
    ) -> Result<(), ViaError> {
        // ordering: Acquire — same teardown contract as `post_send`.
        if self.nic.shutdown.load(Ordering::Acquire) {
            return Err(ViaError::Shutdown);
        }
        self.nic.trace_event(
            EventKind::ViaPost,
            self.shared.id,
            total_bytes,
            count as u64,
        );
        self.nic
            .ops
            .send(EngineOp::SendBatch {
                vi: self.shared.id,
                sgs,
                count,
            })
            .map_err(|_| ViaError::Shutdown)
    }

    /// Crate-internal validation of a gather list (also used when
    /// staging into a [`crate::Doorbell`]).
    pub(crate) fn validate_sg(&self, sg: &SgList) -> Result<(), ViaError> {
        if sg.is_empty() {
            return Err(ViaError::OutOfBounds);
        }
        for seg in sg.segments() {
            self.nic.validate(seg)?;
        }
        Ok(())
    }

    /// Posts a remote memory write: the local segment is written into the
    /// peer's registered region without any receiver involvement.
    ///
    /// # Errors
    ///
    /// Fails immediately on local validation problems; remote validation
    /// problems (unknown region, bounds, permission) are reported through
    /// the completion.
    #[press::hot_path]
    pub fn rdma_write(&self, desc: Descriptor, remote: RemoteBuffer) -> Result<(), ViaError> {
        // ordering: Acquire — same teardown contract as `post_send`.
        if self.nic.shutdown.load(Ordering::Acquire) {
            return Err(ViaError::Shutdown);
        }
        self.nic.validate(&desc)?;
        self.nic
            .trace_event(EventKind::RdmaWrite, self.shared.id, desc.len as u64, 0);
        self.nic
            .ops
            .send(EngineOp::Rdma {
                vi: self.shared.id,
                desc,
                remote,
            })
            .map_err(|_| ViaError::Shutdown)
    }

    /// Waits for the next send (or RDMA-write) completion.
    ///
    /// # Errors
    ///
    /// [`ViaError::Timeout`] if nothing completes in time. Not available
    /// when the VI is attached to a [`CompletionQueue`].
    #[press::hot_path]
    pub fn wait_send_completion(&self, timeout: Duration) -> Result<Completion, ViaError> {
        let _own = self.shared.send_reap.claim();
        // press::allow(blocking-in-hot-path): this *is* the explicit
        // VipWaitDone-style wait API — blocking is its contract; the
        // non-blocking alternative is `poll_send_completion`.
        // SAFETY: the owner tag above makes this thread the ring's sole
        // consumer for the duration of the wait.
        unsafe { self.shared.send_done.pop_wait(timeout) }.ok_or(ViaError::Timeout)
    }

    /// Waits for the next receive completion.
    ///
    /// # Errors
    ///
    /// [`ViaError::Timeout`] if nothing arrives in time.
    #[press::hot_path]
    pub fn wait_recv_completion(&self, timeout: Duration) -> Result<Completion, ViaError> {
        let _own = self.shared.recv_reap.claim();
        // press::allow(blocking-in-hot-path): the explicit wait API —
        // blocking is its contract; see `wait_send_completion`.
        // SAFETY: the owner tag above makes this thread the ring's sole
        // consumer for the duration of the wait.
        unsafe { self.shared.recv_done.pop_wait(timeout) }.ok_or(ViaError::Timeout)
    }

    /// Non-blocking poll of the receive completion queue.
    #[press::hot_path]
    pub fn poll_recv_completion(&self) -> Option<Completion> {
        let _own = self.shared.recv_reap.claim();
        // SAFETY: the owner tag above makes this thread the ring's sole
        // consumer for the duration of the poll.
        unsafe { self.shared.recv_done.pop() }
    }

    /// Number of receive descriptors currently posted.
    pub fn posted_recvs(&self) -> usize {
        self.shared.recv_ring.len()
    }

    /// Crate-internal region access for helpers layered over a `Vi`
    /// (e.g. [`crate::CreditChannel`]): reads registered memory of the
    /// owning NIC.
    pub(crate) fn region_read(
        &self,
        region: MemHandle,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, ViaError> {
        let r = self.nic.region(region)?;
        let bytes = r.bytes.read();
        if offset + len > bytes.len() {
            return Err(ViaError::OutOfBounds);
        }
        Ok(bytes[offset..offset + len].to_vec())
    }

    /// Crate-internal write into the owning NIC's registered memory.
    pub(crate) fn region_write(
        &self,
        region: MemHandle,
        offset: usize,
        data: &[u8],
    ) -> Result<(), ViaError> {
        let r = self.nic.region(region)?;
        let mut bytes = r.bytes.write();
        if offset + data.len() > bytes.len() {
            return Err(ViaError::OutOfBounds);
        }
        bytes[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }
}

impl std::fmt::Debug for Vi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vi")
            .field("id", &self.shared.id)
            .field("posted_recvs", &self.posted_recvs())
            .finish()
    }
}

/// Aggregates descriptor completions of multiple VIs into one queue
/// (Section 2.1's CQs).
pub struct CompletionQueue {
    tx: Sender<Completion>,
    rx: Receiver<Completion>,
}

impl Default for CompletionQueue {
    fn default() -> Self {
        CompletionQueue::new()
    }
}

impl CompletionQueue {
    /// Creates an empty completion queue.
    pub fn new() -> Self {
        let (tx, rx) = unbounded();
        CompletionQueue { tx, rx }
    }

    /// Non-blocking poll.
    pub fn poll(&self) -> Option<Completion> {
        self.rx.try_recv().ok()
    }

    /// Blocking wait.
    ///
    /// # Errors
    ///
    /// [`ViaError::Timeout`] if nothing completes in time.
    pub fn wait(&self, timeout: Duration) -> Result<Completion, ViaError> {
        self.rx.recv_timeout(timeout).map_err(|_| ViaError::Timeout)
    }

    /// Number of completions waiting.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// Whether no completions are waiting.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }
}

impl std::fmt::Debug for CompletionQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionQueue")
            .field("pending", &self.rx.len())
            .finish()
    }
}

/// The engine: processes this NIC's posted sends and remote writes, in
/// order, against peers' receive queues and regions.
fn engine_loop(nic: Arc<NicShared>, ops: Receiver<EngineOp>) {
    while let Ok(op) = ops.recv() {
        match op {
            EngineOp::Stop => break,
            EngineOp::Send { vi, sg } => process_send(&nic, vi, sg),
            EngineOp::SendBatch { vi, sgs, count } => {
                // One doorbell, `count` messages: process in post order.
                for sg in sgs.iter().take(count as usize) {
                    process_send(&nic, vi, *sg);
                }
            }
            EngineOp::Rdma { vi, desc, remote } => process_rdma(&nic, vi, desc, remote),
        }
    }
}

/// A resolved peer endpoint: the owning NIC plus the VI state.
type PeerRef = (Arc<NicShared>, Arc<ViShared>);

fn lookup(nic: &Arc<NicShared>, vi: u64) -> Option<(Arc<ViShared>, Reliability, Option<PeerRef>)> {
    // press::allow(blocking-in-hot-path): the VI table is written only
    // by connect/disconnect on the control path; data-path readers
    // never contend with each other on this RwLock.
    let local = nic.vis.read().get(&vi).cloned()?;
    let reliability = local.reliability;
    let peer = local.peer.as_ref().and_then(|(w, id)| {
        let peer_nic = w.upgrade()?;
        let peer_vi = peer_nic.vis.read().get(id).cloned()?;
        Some((peer_nic, peer_vi))
    });
    Some((local, reliability, peer))
}

/// One-copy transfer between registered regions: no staging buffer.
///
/// Distinct regions are locked in address order so two engines copying
/// in opposite directions cannot deadlock; a same-region copy takes the
/// single write lock once and uses `copy_within`.
fn copy_between(
    src: &Region,
    src_off: usize,
    dst: &Region,
    dst_off: usize,
    len: usize,
) -> Result<(), ViaError> {
    if Arc::ptr_eq(&src.bytes, &dst.bytes) {
        // press::allow(blocking-in-hot-path): region locks model DMA —
        // one writer per transfer, taken in address order below, and
        // the simulated wire is the only contender.
        let mut b = dst.bytes.write();
        if src_off + len > b.len() || dst_off + len > b.len() {
            return Err(ViaError::OutOfBounds);
        }
        b.copy_within(src_off..src_off + len, dst_off);
        return Ok(());
    }
    let src_first =
        std::ptr::addr_of!(*src.bytes) as usize <= std::ptr::addr_of!(*dst.bytes) as usize;
    let (sb, mut db);
    if src_first {
        sb = src.bytes.read(); // press::allow(blocking-in-hot-path): address-ordered DMA pair
        db = dst.bytes.write(); // press::allow(blocking-in-hot-path): address-ordered DMA pair
    } else {
        db = dst.bytes.write(); // press::allow(blocking-in-hot-path): address-ordered DMA pair
        sb = src.bytes.read(); // press::allow(blocking-in-hot-path): address-ordered DMA pair
    }
    if src_off + len > sb.len() || dst_off + len > db.len() {
        return Err(ViaError::OutOfBounds);
    }
    db[dst_off..dst_off + len].copy_from_slice(&sb[src_off..src_off + len]);
    Ok(())
}

#[press::hot_path]
fn process_send(nic: &Arc<NicShared>, vi: u64, sg: SgList) {
    let Some((local, reliability, peer)) = lookup(nic, vi) else {
        return;
    };
    let done_desc = sg.completion_descriptor();
    let total = sg.total_len();
    let fail = |err: ViaError| {
        nic.trace_event(EventKind::ViaComplete, vi, 0, 1);
        local.complete_send(
            nic,
            Completion {
                vi_id: vi,
                descriptor: done_desc,
                kind: CompletionKind::Send,
                transferred: 0,
                status: Err(err),
            },
        );
    };
    let Some((peer_nic, peer_vi)) = peer else {
        fail(ViaError::NotConnected);
        return;
    };
    // Injected transport failure: the descriptor completes with error
    // status and nothing reaches the peer.
    if nic.should_fail() {
        fail(ViaError::NotConnected);
        return;
    }
    // Resolve every source segment up front; a region deregistered
    // after posting surfaces here, as an error completion.
    let mut srcs: [Option<Region>; MAX_SEGMENTS] = std::array::from_fn(|_| None);
    for (i, seg) in sg.segments().iter().enumerate() {
        match nic.region(seg.region) {
            Ok(r) => srcs[i] = Some(r),
            Err(e) => {
                fail(e);
                return;
            }
        }
    }
    // Fault injection: unreliable delivery drops silently — the send
    // still completes successfully and the peer's descriptor stays
    // posted (the "message lost without being detected" of Section 2.1).
    if reliability == Reliability::UnreliableDelivery && nic.should_drop() {
        nic.trace_event(EventKind::ViaComplete, vi, total as u64, 0);
        local.complete_send(
            nic,
            Completion {
                vi_id: vi,
                descriptor: done_desc,
                kind: CompletionKind::Send,
                transferred: total,
                status: Ok(()),
            },
        );
        return;
    }
    let Some(rd) = peer_vi.pop_posted_recv() else {
        match reliability {
            // Lost: nobody was listening, nobody is told.
            Reliability::UnreliableDelivery => {
                nic.trace_event(EventKind::ViaComplete, vi, total as u64, 0);
                local.complete_send(
                    nic,
                    Completion {
                        vi_id: vi,
                        descriptor: done_desc,
                        kind: CompletionKind::Send,
                        transferred: total,
                        status: Ok(()),
                    },
                );
            }
            Reliability::ReliableDelivery => fail(ViaError::ReceiverNotReady),
        }
        return;
    };
    if rd.len < total {
        fail(ViaError::RecvBufferTooSmall);
        peer_vi.complete_recv(
            &peer_nic,
            Completion {
                vi_id: peer_vi.id,
                descriptor: rd,
                kind: CompletionKind::Recv,
                transferred: 0,
                status: Err(ViaError::RecvBufferTooSmall),
            },
        );
        return;
    }
    // Gather the segments into the receive buffer, region to region —
    // one copy, no staging.
    let mut status = Ok(());
    match peer_nic.region(rd.region) {
        Ok(dst) => {
            let mut dst_off = rd.offset;
            for (i, seg) in sg.segments().iter().enumerate() {
                let Some(src) = srcs[i].as_ref() else {
                    break;
                };
                if let Err(e) = copy_between(src, seg.offset, &dst, dst_off, seg.len) {
                    status = Err(e);
                    break;
                }
                dst_off += seg.len;
            }
        }
        Err(e) => status = Err(e),
    }
    let transferred = if status.is_ok() { total } else { 0 };
    nic.trace_event(
        EventKind::ViaComplete,
        vi,
        transferred as u64,
        status.is_err() as u64,
    );
    local.complete_send(
        nic,
        Completion {
            vi_id: vi,
            descriptor: done_desc,
            kind: CompletionKind::Send,
            transferred,
            status,
        },
    );
    peer_nic.trace_event(
        EventKind::ViaRecv,
        peer_vi.id,
        transferred as u64,
        status.is_err() as u64,
    );
    peer_vi.complete_recv(
        &peer_nic,
        Completion {
            vi_id: peer_vi.id,
            descriptor: rd,
            kind: CompletionKind::Recv,
            transferred,
            status,
        },
    );
}

#[press::hot_path]
fn process_rdma(nic: &Arc<NicShared>, vi: u64, desc: Descriptor, remote: RemoteBuffer) {
    let Some((local, reliability, peer)) = lookup(nic, vi) else {
        return;
    };
    let complete = |status: Result<(), ViaError>, transferred: usize| {
        nic.trace_event(
            EventKind::ViaComplete,
            vi,
            transferred as u64,
            status.is_err() as u64,
        );
        local.complete_send(
            nic,
            Completion {
                vi_id: vi,
                descriptor: desc,
                kind: CompletionKind::RdmaWrite,
                transferred,
                status,
            },
        );
    };
    let Some((peer_nic, _peer_vi)) = peer else {
        complete(Err(ViaError::NotConnected), 0);
        return;
    };
    if nic.should_fail() {
        complete(Err(ViaError::NotConnected), 0);
        return;
    }
    let src = match nic.region(desc.region) {
        Ok(r) => r,
        Err(e) => {
            complete(Err(e), 0);
            return;
        }
    };
    if reliability == Reliability::UnreliableDelivery && nic.should_drop() {
        complete(Ok(()), desc.len);
        return;
    }
    let status = match peer_nic.region(remote.region) {
        Ok(dst) => {
            if !dst.allow_remote_write {
                Err(ViaError::RemoteWriteForbidden)
            } else {
                copy_between(&src, desc.offset, &dst, remote.offset, desc.len)
            }
        }
        Err(e) => Err(e),
    };
    let ok = status.is_ok();
    complete(status, if ok { desc.len } else { 0 });
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_secs(2);

    fn pair(reliability: Reliability) -> (Nic, Nic, Vi, Vi) {
        let fabric = Fabric::new();
        let a = fabric.create_nic("a");
        let b = fabric.create_nic("b");
        let (va, vb) = fabric.connect(&a, &b, reliability).expect("connect");
        (a, b, va, vb)
    }

    #[test]
    fn send_recv_round_trip() {
        let (a, b, va, vb) = pair(Reliability::ReliableDelivery);
        let ma = a.register(b"hello via".to_vec(), false).unwrap();
        let mb = b.register(vec![0; 64], false).unwrap();
        vb.post_recv(Descriptor::new(mb, 0, 64)).unwrap();
        va.post_send(Descriptor::new(ma, 0, 9)).unwrap();
        let s = va.wait_send_completion(T).unwrap();
        assert!(s.is_ok());
        assert_eq!(s.kind, CompletionKind::Send);
        let r = vb.wait_recv_completion(T).unwrap();
        assert_eq!(r.bytes_transferred(), 9);
        assert_eq!(b.read_region(mb, 0, 9).unwrap(), b"hello via");
    }

    #[test]
    fn tracer_records_post_and_completion_events() {
        use press_telem::LiveTracer;
        let tracer = LiveTracer::new();
        let (a, b, va, vb) = pair(Reliability::ReliableDelivery);
        a.set_tracer(tracer.handle(0, press_telem::lane::SEND));
        b.set_tracer(tracer.handle(1, press_telem::lane::RECV));
        let ma = a.register(b"traced".to_vec(), false).unwrap();
        let mb = b.register(vec![0; 64], false).unwrap();
        vb.post_recv(Descriptor::new(mb, 0, 64)).unwrap();
        va.post_send(Descriptor::new(ma, 0, 6)).unwrap();
        assert!(va.wait_send_completion(T).unwrap().is_ok());
        assert!(vb.wait_recv_completion(T).unwrap().is_ok());
        drop(va);
        drop(vb);
        drop(a);
        drop(b);
        let trace = tracer.drain();
        let kinds: Vec<EventKind> = trace.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::ViaPost), "{kinds:?}");
        assert!(kinds.contains(&EventKind::ViaComplete), "{kinds:?}");
        assert!(kinds.contains(&EventKind::ViaRecv), "{kinds:?}");
        // Both NICs contributed, under their respective node ids.
        assert_eq!(trace.nodes(), vec![0, 1]);
        assert!(trace.count_cat("via") >= 3);
    }

    #[test]
    fn bidirectional_transfers() {
        let (a, b, va, vb) = pair(Reliability::ReliableDelivery);
        let ma = a.register(vec![7; 16], false).unwrap();
        let mb = b.register(vec![9; 16], false).unwrap();
        va.post_recv(Descriptor::new(ma, 8, 8)).unwrap();
        vb.post_recv(Descriptor::new(mb, 8, 8)).unwrap();
        va.post_send(Descriptor::new(ma, 0, 8)).unwrap();
        vb.post_send(Descriptor::new(mb, 0, 8)).unwrap();
        assert!(va.wait_recv_completion(T).unwrap().is_ok());
        assert!(vb.wait_recv_completion(T).unwrap().is_ok());
        assert_eq!(a.read_region(ma, 8, 8).unwrap(), vec![9; 8]);
        assert_eq!(b.read_region(mb, 8, 8).unwrap(), vec![7; 8]);
    }

    #[test]
    fn reliable_in_order_delivery() {
        let (a, b, va, vb) = pair(Reliability::ReliableDelivery);
        let ma = a.register((0..=255).collect(), false).unwrap();
        let mb = b.register(vec![0; 256], false).unwrap();
        for i in 0..8 {
            vb.post_recv(Descriptor::new(mb, i * 32, 32)).unwrap();
        }
        for i in 0..8 {
            va.post_send(Descriptor::new(ma, i * 32, 32)).unwrap();
        }
        for _ in 0..8 {
            assert!(vb.wait_recv_completion(T).unwrap().is_ok());
        }
        // In-order: receive buffers filled in posting order.
        let got = b.read_region(mb, 0, 256).unwrap();
        let want: Vec<u8> = (0..=255).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn reliable_send_without_recv_reports_error() {
        let (a, _b, va, _vb) = pair(Reliability::ReliableDelivery);
        let ma = a.register(vec![1; 8], false).unwrap();
        va.post_send(Descriptor::new(ma, 0, 8)).unwrap();
        let c = va.wait_send_completion(T).unwrap();
        assert_eq!(c.status, Err(ViaError::ReceiverNotReady));
    }

    #[test]
    fn unreliable_send_without_recv_is_silent() {
        let (a, _b, va, _vb) = pair(Reliability::UnreliableDelivery);
        let ma = a.register(vec![1; 8], false).unwrap();
        va.post_send(Descriptor::new(ma, 0, 8)).unwrap();
        let c = va.wait_send_completion(T).unwrap();
        assert!(c.is_ok(), "unreliable sends complete even when lost");
    }

    #[test]
    fn unreliable_drops_with_fault_injection() {
        let (a, b, va, vb) = pair(Reliability::UnreliableDelivery);
        a.set_fault(FaultConfig {
            drop_probability: 1.0,
            fail_probability: 0.0,
            seed: 1,
        });
        let ma = a.register(vec![5; 8], false).unwrap();
        let mb = b.register(vec![0; 8], false).unwrap();
        vb.post_recv(Descriptor::new(mb, 0, 8)).unwrap();
        va.post_send(Descriptor::new(ma, 0, 8)).unwrap();
        assert!(va.wait_send_completion(T).unwrap().is_ok());
        // Nothing arrives; the recv descriptor stays posted.
        assert_eq!(
            vb.wait_recv_completion(Duration::from_millis(100)),
            Err(ViaError::Timeout)
        );
        assert_eq!(vb.posted_recvs(), 1);
        assert_eq!(b.read_region(mb, 0, 8).unwrap(), vec![0; 8]);
    }

    #[test]
    fn reliable_ignores_fault_injection() {
        let (a, b, va, vb) = pair(Reliability::ReliableDelivery);
        a.set_fault(FaultConfig {
            drop_probability: 1.0,
            fail_probability: 0.0,
            seed: 1,
        });
        let ma = a.register(vec![5; 8], false).unwrap();
        let mb = b.register(vec![0; 8], false).unwrap();
        vb.post_recv(Descriptor::new(mb, 0, 8)).unwrap();
        va.post_send(Descriptor::new(ma, 0, 8)).unwrap();
        assert_eq!(vb.wait_recv_completion(T).unwrap().bytes_transferred(), 8);
    }

    #[test]
    fn rdma_write_without_receiver_involvement() {
        let (a, b, va, vb) = pair(Reliability::ReliableDelivery);
        let ma = a.register(b"rdma!".to_vec(), false).unwrap();
        let mb = b.register(vec![0; 32], true).unwrap();
        // No post_recv on vb at all.
        va.rdma_write(
            Descriptor::new(ma, 0, 5),
            RemoteBuffer {
                region: mb,
                offset: 10,
            },
        )
        .unwrap();
        let c = va.wait_send_completion(T).unwrap();
        assert!(c.is_ok());
        assert_eq!(c.kind, CompletionKind::RdmaWrite);
        assert_eq!(b.read_region(mb, 10, 5).unwrap(), b"rdma!");
        let _ = vb;
    }

    #[test]
    fn rdma_write_requires_permission() {
        let (a, b, va, _vb) = pair(Reliability::ReliableDelivery);
        let ma = a.register(vec![1; 4], false).unwrap();
        let mb = b.register(vec![0; 4], false).unwrap(); // no remote write
        va.rdma_write(
            Descriptor::new(ma, 0, 4),
            RemoteBuffer {
                region: mb,
                offset: 0,
            },
        )
        .unwrap();
        let c = va.wait_send_completion(T).unwrap();
        assert_eq!(c.status, Err(ViaError::RemoteWriteForbidden));
        assert_eq!(b.read_region(mb, 0, 4).unwrap(), vec![0; 4]);
    }

    #[test]
    fn rdma_write_bounds_checked_remotely() {
        let (a, b, va, _vb) = pair(Reliability::ReliableDelivery);
        let ma = a.register(vec![1; 16], false).unwrap();
        let mb = b.register(vec![0; 8], true).unwrap();
        va.rdma_write(
            Descriptor::new(ma, 0, 16),
            RemoteBuffer {
                region: mb,
                offset: 0,
            },
        )
        .unwrap();
        let c = va.wait_send_completion(T).unwrap();
        assert_eq!(c.status, Err(ViaError::OutOfBounds));
    }

    #[test]
    fn local_validation_errors_are_synchronous() {
        let (a, _b, va, _vb) = pair(Reliability::ReliableDelivery);
        let ma = a.register(vec![0; 8], false).unwrap();
        assert_eq!(
            va.post_send(Descriptor::new(ma, 4, 8)),
            Err(ViaError::OutOfBounds)
        );
        assert_eq!(
            va.post_send(Descriptor::new(MemHandle(999), 0, 1)),
            Err(ViaError::UnknownRegion)
        );
        assert_eq!(
            va.post_recv(Descriptor::new(ma, 0, 16)),
            Err(ViaError::OutOfBounds)
        );
    }

    #[test]
    fn recv_buffer_too_small_fails_both_sides() {
        let (a, b, va, vb) = pair(Reliability::ReliableDelivery);
        let ma = a.register(vec![1; 64], false).unwrap();
        let mb = b.register(vec![0; 64], false).unwrap();
        vb.post_recv(Descriptor::new(mb, 0, 16)).unwrap();
        va.post_send(Descriptor::new(ma, 0, 32)).unwrap();
        assert_eq!(
            va.wait_send_completion(T).unwrap().status,
            Err(ViaError::RecvBufferTooSmall)
        );
        assert_eq!(
            vb.wait_recv_completion(T).unwrap().status,
            Err(ViaError::RecvBufferTooSmall)
        );
    }

    #[test]
    fn completion_queue_aggregates_vis() {
        let fabric = Fabric::new();
        let a = fabric.create_nic("a");
        let b = fabric.create_nic("b");
        let cq = CompletionQueue::new();
        let (va1, vb1) = fabric
            .connect_with_cqs(&a, &b, Reliability::ReliableDelivery, None, Some(&cq))
            .unwrap();
        let (va2, vb2) = fabric
            .connect_with_cqs(&a, &b, Reliability::ReliableDelivery, None, Some(&cq))
            .unwrap();
        let ma = a.register(vec![3; 32], false).unwrap();
        let mb = b.register(vec![0; 64], false).unwrap();
        vb1.post_recv(Descriptor::new(mb, 0, 16)).unwrap();
        vb2.post_recv(Descriptor::new(mb, 16, 16)).unwrap();
        va1.post_send(Descriptor::new(ma, 0, 16)).unwrap();
        va2.post_send(Descriptor::new(ma, 16, 16)).unwrap();
        let c1 = cq.wait(T).unwrap();
        let c2 = cq.wait(T).unwrap();
        let mut ids = vec![c1.vi_id, c2.vi_id];
        ids.sort_unstable();
        let mut expect = vec![vb1.id(), vb2.id()];
        expect.sort_unstable();
        assert_eq!(ids, expect);
        assert!(cq.is_empty());
    }

    #[test]
    fn deregister_invalidates_handle() {
        let fabric = Fabric::new();
        let a = fabric.create_nic("a");
        let ma = a.register(vec![0; 8], false).unwrap();
        a.deregister(ma).unwrap();
        assert_eq!(a.read_region(ma, 0, 1), Err(ViaError::UnknownRegion));
        assert_eq!(a.deregister(ma), Err(ViaError::UnknownRegion));
    }

    #[test]
    fn shutdown_fails_pending_posts() {
        let fabric = Fabric::new();
        let a = fabric.create_nic("a");
        let b = fabric.create_nic("b");
        let (va, _vb) = fabric
            .connect(&a, &b, Reliability::ReliableDelivery)
            .unwrap();
        let ma = a.register(vec![0; 8], false).unwrap();
        drop(a);
        // The engine is gone: posting reports shutdown.
        assert_eq!(
            va.post_send(Descriptor::new(ma, 0, 8)),
            Err(ViaError::Shutdown)
        );
    }

    #[test]
    fn many_concurrent_transfers() {
        let fabric = Fabric::new();
        let a = fabric.create_nic("a");
        let b = fabric.create_nic("b");
        let (va, vb) = fabric
            .connect(&a, &b, Reliability::ReliableDelivery)
            .unwrap();
        let ma = a.register(vec![0xAB; 1 << 16], false).unwrap();
        let mb = b.register(vec![0; 1 << 16], false).unwrap();
        for i in 0..256 {
            vb.post_recv(Descriptor::new(mb, i * 256, 256)).unwrap();
        }
        for i in 0..256 {
            va.post_send(Descriptor::new(ma, i * 256, 256)).unwrap();
        }
        for _ in 0..256 {
            assert!(vb.wait_recv_completion(T).unwrap().is_ok());
        }
        assert_eq!(b.read_region(mb, 0, 1 << 16).unwrap(), vec![0xAB; 1 << 16]);
    }

    #[test]
    fn sg_send_gathers_segments_into_one_message() {
        let (a, b, va, vb) = pair(Reliability::ReliableDelivery);
        let hdr = a.register(b"HDR|".to_vec(), false).unwrap();
        let body = a.register(b"0123456789abcdef".to_vec(), false).unwrap();
        let mb = b.register(vec![0; 64], false).unwrap();
        vb.post_recv(Descriptor::new(mb, 0, 64)).unwrap();
        let mut sg = SgList::new();
        sg.push(Descriptor::new(hdr, 0, 4)).unwrap();
        sg.push(Descriptor::new(body, 0, 8)).unwrap();
        sg.push(Descriptor::new(body, 12, 4)).unwrap();
        va.post_send_sg(sg).unwrap();
        let s = va.wait_send_completion(T).unwrap();
        assert!(s.is_ok());
        assert_eq!(s.transferred, 16);
        let r = vb.wait_recv_completion(T).unwrap();
        assert_eq!(r.bytes_transferred(), 16);
        assert_eq!(b.read_region(mb, 0, 16).unwrap(), b"HDR|01234567cdef");
    }

    #[test]
    fn sg_send_too_big_for_recv_fails_both_sides() {
        let (a, b, va, vb) = pair(Reliability::ReliableDelivery);
        let ma = a.register(vec![1; 64], false).unwrap();
        let mb = b.register(vec![0; 64], false).unwrap();
        vb.post_recv(Descriptor::new(mb, 0, 16)).unwrap();
        let mut sg = SgList::new();
        sg.push(Descriptor::new(ma, 0, 12)).unwrap();
        sg.push(Descriptor::new(ma, 32, 12)).unwrap();
        va.post_send_sg(sg).unwrap();
        assert_eq!(
            va.wait_send_completion(T).unwrap().status,
            Err(ViaError::RecvBufferTooSmall)
        );
        assert_eq!(
            vb.wait_recv_completion(T).unwrap().status,
            Err(ViaError::RecvBufferTooSmall)
        );
    }

    #[test]
    fn empty_sg_rejected_synchronously() {
        let (_a, _b, va, _vb) = pair(Reliability::ReliableDelivery);
        assert_eq!(va.post_send_sg(SgList::new()), Err(ViaError::OutOfBounds));
    }

    #[test]
    fn slab_slots_feed_sends_without_fresh_registration() {
        let (a, b, va, vb) = pair(Reliability::ReliableDelivery);
        let pool = a.register_slab(4, 32, false).unwrap();
        let mb = b.register(vec![0; 64], false).unwrap();
        vb.post_recv(Descriptor::new(mb, 0, 64)).unwrap();
        let slot = pool.alloc().unwrap();
        a.write_region(pool.handle(), slot.offset, b"from the slab")
            .unwrap();
        let d = pool.descriptor(slot, 13).unwrap();
        pool.mark_in_flight(slot).unwrap();
        va.post_send(d).unwrap();
        assert!(va.wait_send_completion(T).unwrap().is_ok());
        assert_eq!(b.read_region(mb, 0, 13).unwrap(), b"from the slab");
        pool.mark_complete(slot).unwrap();
        pool.free(slot).unwrap();
        assert_eq!(pool.free_slots(), 4);
    }

    #[test]
    fn same_region_send_copies_within() {
        // Loopback-style transfer where source and destination share a
        // region: exercises the copy_within path (and must not deadlock
        // on the region lock).
        let fabric = Fabric::new();
        let a = fabric.create_nic("a");
        let (va, vb) = fabric
            .connect(&a, &a, Reliability::ReliableDelivery)
            .unwrap();
        let m = a.register(vec![0; 64], false).unwrap();
        a.write_region(m, 0, b"ping").unwrap();
        vb.post_recv(Descriptor::new(m, 32, 16)).unwrap();
        va.post_send(Descriptor::new(m, 0, 4)).unwrap();
        assert!(vb.wait_recv_completion(T).unwrap().is_ok());
        assert_eq!(a.read_region(m, 32, 4).unwrap(), b"ping");
    }
}
