//! Error type of the software VIA library.

use std::fmt;

/// Errors reported by the VIA library.
///
/// VIA (Section 2.1 of the paper) reports errors through descriptor
/// status and connection state; this enum covers both, plus the
/// library-level misuse cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViaError {
    /// The memory handle is not registered with this NIC.
    UnknownRegion,
    /// Descriptor range falls outside the registered region.
    OutOfBounds,
    /// The VI is not connected (or its peer has gone away).
    NotConnected,
    /// The remote region does not accept remote memory writes.
    RemoteWriteForbidden,
    /// Under reliable delivery: the peer had no receive descriptor posted.
    ReceiverNotReady,
    /// Waited too long for a completion.
    Timeout,
    /// The NIC engine has shut down.
    Shutdown,
    /// Send and receive descriptors disagree (receive buffer too small).
    RecvBufferTooSmall,
    /// A registered-memory slab pool has no free slots.
    PoolExhausted,
    /// The slot handed to [`crate::SlabPool::free`] was already free.
    DoubleFree,
    /// The slot still has an in-flight descriptor and cannot be freed or
    /// reallocated until its completion is reaped.
    SlotInFlight,
    /// A fixed-capacity descriptor ring (receive queue or doorbell batch)
    /// is full; drain completions or flush before posting more.
    RingFull,
}

impl fmt::Display for ViaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            ViaError::UnknownRegion => "memory region is not registered",
            ViaError::OutOfBounds => "descriptor exceeds registered region bounds",
            ViaError::NotConnected => "virtual interface is not connected",
            ViaError::RemoteWriteForbidden => "remote region does not allow remote writes",
            ViaError::ReceiverNotReady => "peer had no receive descriptor posted",
            ViaError::Timeout => "timed out waiting for completion",
            ViaError::Shutdown => "nic engine has shut down",
            ViaError::RecvBufferTooSmall => "receive buffer smaller than incoming message",
            ViaError::PoolExhausted => "slab pool has no free slots",
            ViaError::DoubleFree => "slab slot is already free",
            ViaError::SlotInFlight => "slab slot still has an in-flight descriptor",
            ViaError::RingFull => "descriptor ring is full",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ViaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errors = [
            ViaError::UnknownRegion,
            ViaError::OutOfBounds,
            ViaError::NotConnected,
            ViaError::RemoteWriteForbidden,
            ViaError::ReceiverNotReady,
            ViaError::Timeout,
            ViaError::Shutdown,
            ViaError::RecvBufferTooSmall,
            ViaError::PoolExhausted,
            ViaError::DoubleFree,
            ViaError::SlotInFlight,
            ViaError::RingFull,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().is_some_and(|c| c.is_lowercase()));
        }
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<ViaError>();
    }
}
