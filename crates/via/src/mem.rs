//! Registered memory regions.

use std::sync::Arc;

use parking_lot::RwLock;

/// Handle to a memory region registered with a [`crate::Nic`].
///
/// VIA requires every buffer involved in a transfer to be registered:
/// registration pins the pages so the NIC can DMA directly into user
/// memory. In this software implementation a handle names a byte buffer
/// owned by the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemHandle(pub(crate) u64);

impl std::fmt::Display for MemHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mr#{}", self.0)
    }
}

/// A registered region: shared bytes plus the remote-write permission.
#[derive(Debug, Clone)]
pub(crate) struct Region {
    pub bytes: Arc<RwLock<Vec<u8>>>,
    /// Whether remote NICs may RDMA-write into this region.
    pub allow_remote_write: bool,
}

impl Region {
    pub fn new(data: Vec<u8>, allow_remote_write: bool) -> Self {
        Region {
            bytes: Arc::new(RwLock::new(data)),
            allow_remote_write,
        }
    }

    pub fn len(&self) -> usize {
        self.bytes.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_shares_bytes() {
        let r = Region::new(vec![1, 2, 3], true);
        let clone = r.clone();
        clone.bytes.write()[0] = 9;
        assert_eq!(r.bytes.read()[0], 9);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn handle_display() {
        assert_eq!(MemHandle(7).to_string(), "mr#7");
    }
}
