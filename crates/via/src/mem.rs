//! Registered memory regions and the V6 slab pool.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::ViaError;

/// Handle to a memory region registered with a [`crate::Nic`].
///
/// VIA requires every buffer involved in a transfer to be registered:
/// registration pins the pages so the NIC can DMA directly into user
/// memory. In this software implementation a handle names a byte buffer
/// owned by the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemHandle(pub(crate) u64);

impl std::fmt::Display for MemHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mr#{}", self.0)
    }
}

/// A registered region: shared bytes plus the remote-write permission.
#[derive(Debug, Clone)]
pub(crate) struct Region {
    pub bytes: Arc<RwLock<Vec<u8>>>,
    /// Whether remote NICs may RDMA-write into this region.
    pub allow_remote_write: bool,
}

impl Region {
    pub fn new(data: Vec<u8>, allow_remote_write: bool) -> Self {
        Region {
            bytes: Arc::new(RwLock::new(data)),
            allow_remote_write,
        }
    }

    pub fn len(&self) -> usize {
        self.bytes.read().len()
    }
}

/// A fixed-size slot handed out by a [`SlabPool`].
///
/// The slot names the `[offset, offset + len)` window of the pool's
/// single pre-registered region, so building a [`crate::Descriptor`]
/// from it never registers or allocates anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabSlot {
    pub(crate) index: u32,
    /// Byte offset of this slot inside the pool's region.
    pub offset: usize,
    /// Capacity of the slot in bytes.
    pub len: usize,
}

/// Per-slot lifecycle states (stored in an `AtomicU8`).
const SLOT_FREE: u8 = 0;
const SLOT_ALLOCATED: u8 = 1;
const SLOT_IN_FLIGHT: u8 = 2;

/// Treiber-stack head sentinel: empty free list.
const FREE_LIST_EMPTY: u32 = u32::MAX;

/// A slab of fixed-size send buffers carved from one registered region.
///
/// V0–V5 allocate a staging buffer per message; the V6 fast path
/// instead grabs a slot from this pool, writes the payload in place,
/// and posts a descriptor over the pool's region — zero allocation and
/// zero registration per message. The free list is a lock-free Treiber
/// stack (`head` packs `index | tag << 32`, the tag bumped on every
/// successful pop so an ABA pop/push/pop of the same slot is detected),
/// and each slot carries an atomic state machine:
///
/// ```text
/// FREE --alloc()--> ALLOCATED --mark_in_flight()--> IN_FLIGHT
///   ^                  |  ^                             |
///   +------free()------+  +--------mark_complete()------+
/// ```
///
/// Misuse returns typed [`ViaError`]s instead of panicking or handing
/// out aliased buffers: `alloc` on an empty pool is `PoolExhausted`,
/// `free` of a FREE slot is `DoubleFree`, and `free` of an IN_FLIGHT
/// slot (descriptor still owned by the NIC) is `SlotInFlight`.
#[derive(Debug)]
pub struct SlabPool {
    handle: MemHandle,
    slot_len: usize,
    states: Box<[AtomicU8]>,
    /// Per-slot "next" links of the free stack.
    next: Box<[AtomicU32]>,
    /// Packed head: low 32 bits slot index (or the empty sentinel),
    /// high 32 bits the ABA tag.
    head: AtomicU64,
}

impl SlabPool {
    /// Builds a pool of `slots` buffers of `slot_len` bytes each over an
    /// already-registered region `handle` (which must span at least
    /// `slots * slot_len` bytes; [`crate::Nic::register_slab`] checks).
    pub(crate) fn over_region(handle: MemHandle, slots: usize, slot_len: usize) -> Self {
        assert!(slots > 0 && slots < FREE_LIST_EMPTY as usize);
        let states = (0..slots)
            .map(|_| AtomicU8::new(SLOT_FREE))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        // Free stack initially holds every slot: 0 -> 1 -> ... -> end.
        let next = (0..slots)
            .map(|i| {
                let link = if i + 1 < slots {
                    (i + 1) as u32
                } else {
                    FREE_LIST_EMPTY
                };
                AtomicU32::new(link)
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SlabPool {
            handle,
            slot_len,
            states,
            next,
            head: AtomicU64::new(0),
        }
    }

    /// The registered region the slots live in.
    pub fn handle(&self) -> MemHandle {
        self.handle
    }

    /// Capacity of each slot in bytes.
    pub fn slot_len(&self) -> usize {
        self.slot_len
    }

    /// Total number of slots.
    pub fn slots(&self) -> usize {
        self.states.len()
    }

    /// Number of slots currently free.
    pub fn free_slots(&self) -> usize {
        self.states
            .iter()
            // ordering: Relaxed — diagnostic count, guards no payload.
            .filter(|s| s.load(Ordering::Relaxed) == SLOT_FREE)
            .count()
    }

    fn pack(index: u32, tag: u32) -> u64 {
        (tag as u64) << 32 | index as u64
    }

    /// A descriptor covering the first `len` bytes of `slot`.
    ///
    /// # Errors
    ///
    /// [`ViaError::OutOfBounds`] if `len` exceeds the slot capacity.
    pub fn descriptor(&self, slot: SlabSlot, len: usize) -> Result<crate::Descriptor, ViaError> {
        if len > slot.len {
            return Err(ViaError::OutOfBounds);
        }
        Ok(crate::Descriptor::new(self.handle, slot.offset, len))
    }

    /// The slot whose buffer starts at byte `offset` of the pool's
    /// region — how a completion (whose descriptor carries only the
    /// region and offset) is mapped back to the slot to release.
    ///
    /// # Errors
    ///
    /// [`ViaError::OutOfBounds`] if `offset` is not the start of a slot.
    pub fn slot_at(&self, offset: usize) -> Result<SlabSlot, ViaError> {
        let index = offset / self.slot_len;
        if index >= self.states.len() || !offset.is_multiple_of(self.slot_len) {
            return Err(ViaError::OutOfBounds);
        }
        Ok(SlabSlot {
            index: index as u32,
            offset,
            len: self.slot_len,
        })
    }

    /// Pops a free slot, or returns [`ViaError::PoolExhausted`].
    pub fn alloc(&self) -> Result<SlabSlot, ViaError> {
        // ordering: Acquire pairs with the Release CAS in free() so the
        // popped slot's link write is visible.
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let index = (head & u32::MAX as u64) as u32;
            if index == FREE_LIST_EMPTY {
                return Err(ViaError::PoolExhausted);
            }
            let tag = (head >> 32) as u32;
            // ordering: Acquire — reads the link published before this
            // slot became top of the stack.
            let next = self.next[index as usize].load(Ordering::Acquire);
            let new_head = Self::pack(next, tag.wrapping_add(1));
            match self.head.compare_exchange_weak(
                head,
                new_head,
                Ordering::AcqRel, // ordering: pop claims the slot, publishes new head
                Ordering::Acquire, // ordering: failure re-reads a coherent head
            ) {
                Ok(_) => {
                    // ordering: Relaxed — the CAS above ordered the
                    // handoff; state is a misuse detector.
                    self.states[index as usize].store(SLOT_ALLOCATED, Ordering::Relaxed);
                    return Ok(SlabSlot {
                        index,
                        offset: index as usize * self.slot_len,
                        len: self.slot_len,
                    });
                }
                Err(current) => head = current,
            }
        }
    }

    /// Marks an allocated slot's descriptor as posted to the NIC.
    ///
    /// While IN_FLIGHT the slot cannot be freed; reap the completion and
    /// call [`SlabPool::mark_complete`] first.
    pub fn mark_in_flight(&self, slot: SlabSlot) -> Result<(), ViaError> {
        if slot.index as usize >= self.states.len() {
            return Err(ViaError::UnknownRegion);
        }
        match self.states[slot.index as usize].compare_exchange(
            SLOT_ALLOCATED,
            SLOT_IN_FLIGHT,
            Ordering::AcqRel,  // ordering: claim ALLOCATED -> IN_FLIGHT exactly once
            Ordering::Acquire, // ordering: failure load observes the true state
        ) {
            Ok(_) => Ok(()),
            Err(SLOT_FREE) => Err(ViaError::DoubleFree),
            Err(_) => Err(ViaError::SlotInFlight),
        }
    }

    /// Marks an in-flight slot's completion as reaped; the slot drops
    /// back to ALLOCATED and may now be freed (or reused in place).
    pub fn mark_complete(&self, slot: SlabSlot) -> Result<(), ViaError> {
        if slot.index as usize >= self.states.len() {
            return Err(ViaError::UnknownRegion);
        }
        match self.states[slot.index as usize].compare_exchange(
            SLOT_IN_FLIGHT,
            SLOT_ALLOCATED,
            Ordering::AcqRel, // ordering: pairs with mark_in_flight; NIC reads are done
            Ordering::Acquire, // ordering: failure load observes the true state
        ) {
            Ok(_) => Ok(()),
            Err(SLOT_FREE) => Err(ViaError::DoubleFree),
            Err(_) => Err(ViaError::SlotInFlight),
        }
    }

    /// Returns a slot to the free list.
    ///
    /// Rejects slots that are already free ([`ViaError::DoubleFree`]) or
    /// still posted ([`ViaError::SlotInFlight`]) — a freed-while-in-
    /// flight slot could be re-allocated and overwritten while the NIC
    /// still reads it, which is exactly the aliasing bug the state
    /// machine exists to prevent.
    pub fn free(&self, slot: SlabSlot) -> Result<(), ViaError> {
        let idx = slot.index as usize;
        if idx >= self.states.len() {
            return Err(ViaError::UnknownRegion);
        }
        match self.states[idx].compare_exchange(
            SLOT_ALLOCATED,
            SLOT_FREE,
            Ordering::AcqRel,  // ordering: claim ALLOCATED -> FREE exactly once
            Ordering::Acquire, // ordering: failure load observes the true state
        ) {
            Ok(_) => {}
            Err(SLOT_IN_FLIGHT) => return Err(ViaError::SlotInFlight),
            Err(_) => return Err(ViaError::DoubleFree),
        }
        // Push onto the Treiber stack.
        // ordering: Acquire — start from a coherent head, as in alloc().
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let top = (head & u32::MAX as u64) as u32;
            let tag = (head >> 32) as u32;
            // ordering: Release — the link must be visible to the next
            // alloc() before the head CAS makes this slot the top.
            self.next[idx].store(top, Ordering::Release);
            let new_head = Self::pack(slot.index, tag.wrapping_add(1));
            match self.head.compare_exchange_weak(
                head,
                new_head,
                Ordering::AcqRel,  // ordering: push publishes the slot and its link
                Ordering::Acquire, // ordering: failure re-reads a coherent head
            ) {
                Ok(_) => return Ok(()),
                Err(current) => head = current,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_shares_bytes() {
        let r = Region::new(vec![1, 2, 3], true);
        let clone = r.clone();
        clone.bytes.write()[0] = 9;
        assert_eq!(r.bytes.read()[0], 9);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn handle_display() {
        assert_eq!(MemHandle(7).to_string(), "mr#7");
    }

    #[test]
    fn slab_alloc_free_cycle() {
        let pool = SlabPool::over_region(MemHandle(1), 3, 64);
        assert_eq!(pool.free_slots(), 3);
        let a = pool.alloc().unwrap();
        let b = pool.alloc().unwrap();
        let c = pool.alloc().unwrap();
        assert_eq!(pool.alloc(), Err(ViaError::PoolExhausted));
        // Slots tile the region without overlap.
        let mut offsets = [a.offset, b.offset, c.offset];
        offsets.sort_unstable();
        assert_eq!(offsets, [0, 64, 128]);
        pool.free(b).unwrap();
        assert_eq!(pool.free(b), Err(ViaError::DoubleFree));
        let b2 = pool.alloc().unwrap();
        assert_eq!(b2.offset, b.offset);
        pool.free(a).unwrap();
        pool.free(b2).unwrap();
        pool.free(c).unwrap();
        assert_eq!(pool.free_slots(), 3);
    }

    #[test]
    fn slab_in_flight_guards_free() {
        let pool = SlabPool::over_region(MemHandle(1), 2, 16);
        let s = pool.alloc().unwrap();
        pool.mark_in_flight(s).unwrap();
        assert_eq!(pool.free(s), Err(ViaError::SlotInFlight));
        assert_eq!(pool.mark_in_flight(s), Err(ViaError::SlotInFlight));
        pool.mark_complete(s).unwrap();
        pool.free(s).unwrap();
        assert_eq!(pool.mark_complete(s), Err(ViaError::DoubleFree));
    }

    #[test]
    fn slot_at_maps_offsets_back_to_slots() {
        let pool = SlabPool::over_region(MemHandle(3), 4, 64);
        let s = pool.slot_at(128).unwrap();
        assert_eq!((s.index, s.offset, s.len), (2, 128, 64));
        assert_eq!(pool.slot_at(129), Err(ViaError::OutOfBounds));
        assert_eq!(pool.slot_at(256), Err(ViaError::OutOfBounds));
    }

    #[test]
    fn slab_descriptor_respects_slot_capacity() {
        let pool = SlabPool::over_region(MemHandle(9), 2, 32);
        let s = pool.alloc().unwrap();
        let d = pool.descriptor(s, 20).unwrap();
        assert_eq!(d.region, MemHandle(9));
        assert_eq!(d.offset, s.offset);
        assert_eq!(d.len, 20);
        assert_eq!(pool.descriptor(s, 33), Err(ViaError::OutOfBounds));
    }
}
