//! Property-based tests of the VIA fabric and the credit channel.

use std::time::Duration;

use press_via::{CreditChannel, Descriptor, Fabric, Reliability, RemoteBuffer};
use proptest::collection::vec;
use proptest::prelude::*;

const T: Duration = Duration::from_secs(10);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary message sequences arrive complete, in order, and intact
    /// through the credit channel, for any legal window/batch combination.
    #[test]
    fn credit_channel_preserves_order_and_content(
        sizes in vec(1usize..512, 1..60),
        window_exp in 0u32..4,
        batch_exp in 0u32..3,
    ) {
        let window = 1u32 << (window_exp + batch_exp.min(window_exp + 2));
        let batch = 1u32 << batch_exp.min(window_exp + batch_exp);
        prop_assume!(batch <= window && window.is_multiple_of(batch));
        let fabric = Fabric::new();
        let a = fabric.create_nic("a");
        let b = fabric.create_nic("b");
        let (mut tx, mut rx) =
            CreditChannel::pair(&fabric, &a, &b, window, batch, 512).expect("pair");
        let sizes_clone = sizes.clone();
        let producer = std::thread::spawn(move || {
            for (i, &len) in sizes_clone.iter().enumerate() {
                let payload = vec![(i % 251) as u8; len];
                tx.send(&payload, T).expect("send");
            }
        });
        for (i, &len) in sizes.iter().enumerate() {
            let got = rx.recv(T).expect("recv");
            prop_assert_eq!(got.len(), len);
            prop_assert!(got.iter().all(|&byte| byte == (i % 251) as u8));
        }
        producer.join().expect("producer");
    }

    /// RDMA writes land exactly where directed, for arbitrary offsets and
    /// lengths within bounds.
    #[test]
    fn rdma_writes_land_exactly(
        region_len in 64usize..4096,
        writes in vec((0usize..4096, 1usize..256, 0u8..255), 1..20),
    ) {
        let fabric = Fabric::new();
        let a = fabric.create_nic("a");
        let b = fabric.create_nic("b");
        let (vi, _peer) = fabric
            .connect(&a, &b, Reliability::ReliableDelivery)
            .expect("connect");
        let mb = b.register(vec![0u8; region_len], true).expect("register");
        let mut shadow = vec![0u8; region_len];
        for &(offset, len, fill) in &writes {
            let ma = a.register(vec![fill; len], false).expect("register src");
            let in_bounds = offset + len <= region_len;
            vi.rdma_write(
                Descriptor::new(ma, 0, len),
                RemoteBuffer { region: mb, offset },
            )
            .expect("post");
            let c = vi.wait_send_completion(T).expect("completion");
            if in_bounds {
                prop_assert!(c.is_ok(), "in-bounds write failed: {:?}", c.status);
                shadow[offset..offset + len].fill(fill);
            } else {
                prop_assert!(!c.is_ok(), "out-of-bounds write succeeded");
            }
        }
        let got = b.read_region(mb, 0, region_len).expect("read");
        prop_assert_eq!(got, shadow);
    }

    /// Under unreliable delivery with drop injection, everything that
    /// does arrive is intact, and nothing arrives out of order.
    #[test]
    fn lossy_delivery_never_corrupts(
        drop_prob in 0.0f64..1.0,
        seed in 0u64..1000,
        count in 1usize..40,
    ) {
        let fabric = Fabric::new();
        let a = fabric.create_nic("a");
        let b = fabric.create_nic("b");
        a.set_fault(press_via::FaultConfig {
            drop_probability: drop_prob,
            fail_probability: 0.0,
            seed,
        });
        let (va, vb) = fabric
            .connect(&a, &b, Reliability::UnreliableDelivery)
            .expect("connect");
        // Each message i carries the byte i in a 16-byte payload.
        let ma = a.register((0..count).flat_map(|i| [i as u8; 16]).collect(), false)
            .expect("register");
        let mb = b.register(vec![0xFF; 16 * count], false).expect("register");
        for i in 0..count {
            vb.post_recv(Descriptor::new(mb, i * 16, 16)).expect("post recv");
        }
        for i in 0..count {
            va.post_send(Descriptor::new(ma, i * 16, 16)).expect("post send");
            // Unreliable sends always complete OK.
            let c = va.wait_send_completion(T).expect("send completion");
            prop_assert!(c.is_ok());
        }
        // Drain whatever arrived.
        let mut arrived = Vec::new();
        while let Some(c) = vb.poll_recv_completion() {
            prop_assert!(c.is_ok());
            let data = b
                .read_region(mb, c.descriptor.offset, 16)
                .expect("read arrived");
            prop_assert!(data.iter().all(|&x| x == data[0]), "torn message");
            arrived.push(data[0]);
        }
        // In-order: arrived sequence numbers strictly increase.
        for w in arrived.windows(2) {
            prop_assert!(w[0] < w[1], "reordered: {arrived:?}");
        }
        prop_assert!(arrived.len() <= count);
        if drop_prob == 0.0 {
            prop_assert_eq!(arrived.len(), count);
        }
    }
}
