//! Doorbell batching behavior through the public API: batching must be
//! an invisible transport optimization (identical delivery order and
//! content to unbatched posts) and staged descriptors must not sit
//! beyond the configured delay.

use std::time::Duration;

use press_via::{Descriptor, Doorbell, Fabric, MemHandle, Nic, Reliability, Vi, MAX_DOORBELL};
use proptest::collection::vec;
use proptest::prelude::*;

const T: Duration = Duration::from_secs(10);
const SLOT: usize = 64;

struct Link {
    tx_nic: Nic,
    _rx_nic: Nic,
    tx: Vi,
    rx: Vi,
    staging: MemHandle,
}

fn link(recvs: usize) -> Link {
    let fabric = Fabric::new();
    let tx_nic = fabric.create_nic("tx");
    let rx_nic = fabric.create_nic("rx");
    let (tx, rx) = fabric
        .connect(&tx_nic, &rx_nic, Reliability::ReliableDelivery)
        .expect("connect");
    let staging = tx_nic
        .register(vec![0; recvs.max(1) * SLOT], false)
        .expect("register staging");
    let rx_region = rx_nic
        .register(vec![0; recvs.max(1) * SLOT], false)
        .expect("register recv");
    for i in 0..recvs {
        rx.post_recv(Descriptor::new(rx_region, i * SLOT, SLOT))
            .expect("post recv");
    }
    Link {
        tx_nic,
        _rx_nic: rx_nic,
        tx,
        rx,
        staging,
    }
}

/// Sends `payloads` through a doorbell of the given batch depth and
/// returns the received (length, first byte) sequence.
fn deliver(payloads: &[Vec<u8>], batch: usize) -> Vec<(usize, u8)> {
    let link = link(payloads.len());
    let mut bell = Doorbell::new(link.tx.clone(), batch, Duration::from_secs(3600));
    for (i, p) in payloads.iter().enumerate() {
        link.tx_nic
            .write_region(link.staging, i * SLOT, p)
            .expect("stage payload");
        bell.post(Descriptor::new(link.staging, i * SLOT, p.len()))
            .expect("post");
    }
    bell.flush().expect("flush tail");
    payloads
        .iter()
        .map(|_| {
            let c = link.rx.wait_recv_completion(T).expect("recv");
            let got = link
                ._rx_nic
                .read_region(
                    c.descriptor.region,
                    c.descriptor.offset,
                    c.bytes_transferred(),
                )
                .expect("read");
            (got.len(), got[0])
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batched and unbatched delivery produce byte-identical sequences:
    /// doorbell coalescing never reorders, drops, or corrupts messages.
    #[test]
    fn batching_is_delivery_order_invisible(
        lens in vec(1usize..SLOT, 1..40),
        batch in 2usize..=MAX_DOORBELL,
    ) {
        let payloads: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| vec![(i % 251) as u8 + 1; len])
            .collect();
        let unbatched = deliver(&payloads, 1);
        let batched = deliver(&payloads, batch);
        prop_assert_eq!(unbatched, batched);
    }
}

/// A partial batch must not wait for the threshold forever: once the
/// oldest staged descriptor exceeds `max_delay`, `flush_stale` rings.
#[test]
fn flush_stale_rings_after_max_delay() {
    let link = link(2);
    let delay = Duration::from_millis(25);
    let mut bell = Doorbell::new(link.tx.clone(), MAX_DOORBELL, delay);
    link.tx_nic
        .write_region(link.staging, 0, &[7; 8])
        .expect("stage");
    bell.post(Descriptor::new(link.staging, 0, 8))
        .expect("post");
    // Fresh descriptors stay staged...
    assert_eq!(bell.flush_stale().expect("fresh"), 0);
    assert_eq!(bell.pending(), 1);
    std::thread::sleep(delay + Duration::from_millis(10));
    // ...stale ones ring the bell without reaching the threshold.
    assert_eq!(bell.flush_stale().expect("stale"), 1);
    assert_eq!(bell.pending(), 0);
    let c = link.rx.wait_recv_completion(T).expect("recv");
    assert_eq!(c.bytes_transferred(), 8);
}
