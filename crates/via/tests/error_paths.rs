//! Error-path coverage for the VIA fabric: the failure statuses PRESS's
//! recovery machinery has to handle — receiver not ready, undersized
//! receive buffers, completion timeouts, and injected transport failures.

use std::time::Duration;

use press_via::{CompletionQueue, Descriptor, Fabric, FaultConfig, Reliability, ViaError};

const TICK: Duration = Duration::from_millis(500);

fn pair(fabric: &Fabric) -> (press_via::Nic, press_via::Nic) {
    (fabric.create_nic("a"), fabric.create_nic("b"))
}

#[test]
fn reliable_send_without_posted_recv_fails_receiver_not_ready() {
    let fabric = Fabric::new();
    let (a, b) = pair(&fabric);
    let ma = a.register(vec![1u8; 64], false).unwrap();
    let _mb = b.register(vec![0u8; 64], false).unwrap();
    let (va, _vb) = fabric
        .connect(&a, &b, Reliability::ReliableDelivery)
        .unwrap();

    va.post_send(Descriptor::new(ma, 0, 64)).unwrap();
    let c = va.wait_send_completion(TICK).unwrap();
    assert_eq!(c.status, Err(ViaError::ReceiverNotReady));
    assert_eq!(c.bytes_transferred(), 0);
}

#[test]
fn recv_buffer_too_small_errors_both_sides() {
    let fabric = Fabric::new();
    let (a, b) = pair(&fabric);
    let ma = a.register(vec![7u8; 128], false).unwrap();
    let mb = b.register(vec![0u8; 128], false).unwrap();
    let (va, vb) = fabric
        .connect(&a, &b, Reliability::ReliableDelivery)
        .unwrap();

    // Receiver posts 32 bytes; sender pushes 128.
    vb.post_recv(Descriptor::new(mb, 0, 32)).unwrap();
    va.post_send(Descriptor::new(ma, 0, 128)).unwrap();

    let sent = va.wait_send_completion(TICK).unwrap();
    assert_eq!(sent.status, Err(ViaError::RecvBufferTooSmall));
    let recvd = vb.wait_recv_completion(TICK).unwrap();
    assert_eq!(recvd.status, Err(ViaError::RecvBufferTooSmall));
    // The truncated message must not have landed in the region.
    assert_eq!(b.read_region(mb, 0, 32).unwrap(), vec![0u8; 32]);
}

#[test]
fn completion_queue_wait_times_out_when_idle() {
    let fabric = Fabric::new();
    let (a, b) = pair(&fabric);
    let cq = CompletionQueue::new();
    let (va, _vb) = fabric
        .connect_with_cqs(&a, &b, Reliability::ReliableDelivery, Some(&cq), None)
        .unwrap();

    assert_eq!(cq.wait(Duration::from_millis(10)), Err(ViaError::Timeout));
    assert!(cq.is_empty());

    // A completion posted afterwards is still delivered to the CQ, so a
    // timeout is transient, not a poisoned state.
    let ma = a.register(vec![3u8; 16], false).unwrap();
    va.post_send(Descriptor::new(ma, 0, 16)).unwrap();
    let c = cq.wait(TICK).unwrap();
    assert_eq!(c.status, Err(ViaError::ReceiverNotReady));
}

#[test]
fn per_vi_wait_times_out_when_idle() {
    let fabric = Fabric::new();
    let (a, b) = pair(&fabric);
    let (va, vb) = fabric
        .connect(&a, &b, Reliability::ReliableDelivery)
        .unwrap();
    assert_eq!(
        va.wait_send_completion(Duration::from_millis(10)),
        Err(ViaError::Timeout)
    );
    assert_eq!(
        vb.wait_recv_completion(Duration::from_millis(10)),
        Err(ViaError::Timeout)
    );
}

#[test]
fn injected_failure_completes_send_with_error_status() {
    let fabric = Fabric::new();
    let (a, b) = pair(&fabric);
    a.set_fault(FaultConfig {
        fail_probability: 1.0,
        seed: 42,
        ..FaultConfig::default()
    });
    let ma = a.register(vec![9u8; 64], false).unwrap();
    let mb = b.register(vec![0u8; 64], false).unwrap();
    let (va, vb) = fabric
        .connect(&a, &b, Reliability::ReliableDelivery)
        .unwrap();

    vb.post_recv(Descriptor::new(mb, 0, 64)).unwrap();
    va.post_send(Descriptor::new(ma, 0, 64)).unwrap();

    let c = va.wait_send_completion(TICK).unwrap();
    assert_eq!(c.status, Err(ViaError::NotConnected));
    // The receive descriptor stays posted: nothing reached the peer.
    assert_eq!(vb.posted_recvs(), 1);
    assert_eq!(b.read_region(mb, 0, 64).unwrap(), vec![0u8; 64]);
}

#[test]
fn injected_failure_applies_to_rdma_writes() {
    let fabric = Fabric::new();
    let (a, b) = pair(&fabric);
    a.set_fault(FaultConfig {
        fail_probability: 1.0,
        seed: 7,
        ..FaultConfig::default()
    });
    let ma = a.register(vec![5u8; 32], false).unwrap();
    let mb = b.register(vec![0u8; 32], true).unwrap();
    let (va, _vb) = fabric
        .connect(&a, &b, Reliability::ReliableDelivery)
        .unwrap();

    va.rdma_write(
        Descriptor::new(ma, 0, 32),
        press_via::RemoteBuffer {
            region: mb,
            offset: 0,
        },
    )
    .unwrap();
    let c = va.wait_send_completion(TICK).unwrap();
    assert_eq!(c.status, Err(ViaError::NotConnected));
    assert_eq!(b.read_region(mb, 0, 32).unwrap(), vec![0u8; 32]);
}

#[test]
fn failure_injection_is_deterministic_per_seed() {
    // Two NICs with the same seed and p = 0.5 must fail the exact same
    // subset of a sequence of sends.
    let pattern = |seed: u64| -> Vec<bool> {
        let fabric = Fabric::new();
        let (a, b) = pair(&fabric);
        a.set_fault(FaultConfig {
            fail_probability: 0.5,
            seed,
            ..FaultConfig::default()
        });
        let ma = a.register(vec![1u8; 8], false).unwrap();
        let mb = b.register(vec![0u8; 8], false).unwrap();
        let (va, vb) = fabric
            .connect(&a, &b, Reliability::ReliableDelivery)
            .unwrap();
        let mut out = Vec::new();
        for _ in 0..32 {
            vb.post_recv(Descriptor::new(mb, 0, 8)).unwrap();
            va.post_send(Descriptor::new(ma, 0, 8)).unwrap();
            let c = va.wait_send_completion(TICK).unwrap();
            out.push(c.is_ok());
            if c.is_ok() {
                vb.wait_recv_completion(TICK).unwrap();
            }
        }
        out
    };
    let p1 = pattern(99);
    let p2 = pattern(99);
    assert_eq!(p1, p2);
    assert!(p1.iter().any(|&ok| ok), "p=0.5 failed every send");
    assert!(p1.iter().any(|&ok| !ok), "p=0.5 failed no sends");
    assert_ne!(p1, pattern(100), "different seeds gave identical patterns");
}
