//! Property-based tests of the registered-memory slab pool: exhaustion
//! and misuse surface as typed errors (never panics), and the lock-free
//! free list never hands out a slot that is still allocated or in
//! flight.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use press_via::{Fabric, SlabPool, ViaError};
use proptest::prelude::*;

fn pool(slots: usize, slot_len: usize) -> SlabPool {
    let fabric = Fabric::new();
    let nic = fabric.create_nic("slab-test");
    // The pool owns an Arc of the fabric state; the Nic handle may drop.
    nic.register_slab(slots, slot_len, false)
        .expect("register slab")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Draining the pool yields every slot exactly once, then a typed
    /// `PoolExhausted` — no panic, no duplicate slot — and freeing makes
    /// the capacity fully available again.
    #[test]
    fn exhaustion_is_a_typed_error_and_capacity_recovers(
        slots in 1usize..48,
        extra in 1usize..8,
    ) {
        let pool = pool(slots, 64);
        let mut held = Vec::new();
        let mut offsets = HashSet::new();
        for _ in 0..slots {
            let slot = pool.alloc().expect("pool has capacity");
            prop_assert!(offsets.insert(slot.offset), "slot handed out twice");
            held.push(slot);
        }
        for _ in 0..extra {
            prop_assert_eq!(pool.alloc().unwrap_err(), ViaError::PoolExhausted);
        }
        prop_assert_eq!(pool.free_slots(), 0);
        for slot in held.drain(..) {
            pool.free(slot).expect("free held slot");
        }
        prop_assert_eq!(pool.free_slots(), slots);
        for _ in 0..slots {
            prop_assert!(pool.alloc().is_ok(), "freed capacity reusable");
        }
    }

    /// Freeing a slot twice is rejected with `DoubleFree`, whatever else
    /// happened to the pool in between.
    #[test]
    fn double_free_is_rejected(
        slots in 2usize..16,
        churn in 0usize..8,
    ) {
        let pool = pool(slots, 32);
        let slot = pool.alloc().expect("alloc");
        pool.free(slot).expect("first free");
        // Churn other slots so the freed slot may or may not sit at the
        // head of the free list when the stale free arrives.
        let mut held = Vec::new();
        for _ in 0..churn {
            if let Ok(s) = pool.alloc() {
                held.push(s);
            }
        }
        match pool.free(slot) {
            // Slot still free, or reissued to `held` (now ALLOCATED):
            // the stale free must not detach someone else's slot.
            Err(ViaError::DoubleFree) => {}
            Ok(()) if held.iter().any(|s| s.offset == slot.offset) => {
                // Freeing an offset that was reissued is indistinguishable
                // from the new owner freeing it — allowed by the API.
            }
            other => prop_assert!(false, "unexpected stale-free result: {other:?}"),
        }
    }

    /// Slots marked in flight are never handed out again and cannot be
    /// freed until their completion is reaped.
    #[test]
    fn in_flight_slots_are_never_reissued(
        slots in 2usize..24,
        rounds in 1usize..32,
    ) {
        let pool = pool(slots, 32);
        let in_flight = pool.alloc().expect("alloc");
        pool.mark_in_flight(in_flight).expect("mark in flight");
        prop_assert_eq!(pool.free(in_flight).unwrap_err(), ViaError::SlotInFlight);
        for _ in 0..rounds {
            let mut held = Vec::new();
            while let Ok(slot) = pool.alloc() {
                prop_assert!(slot.offset != in_flight.offset, "in-flight slot reissued");
                held.push(slot);
            }
            prop_assert_eq!(held.len(), slots - 1);
            for slot in held {
                pool.free(slot).expect("free");
            }
        }
        // Reaping the completion returns the slot to circulation.
        pool.mark_complete(in_flight).expect("complete");
        pool.free(in_flight).expect("free completed slot");
        let mut seen = HashSet::new();
        while let Ok(slot) = pool.alloc() {
            seen.insert(slot.offset);
        }
        prop_assert_eq!(seen.len(), slots);
    }
}

/// Threads hammering alloc/free concurrently never observe the same slot
/// owned twice: the Treiber free list's ABA tagging holds up under
/// contention.
#[test]
fn concurrent_alloc_free_never_double_issues() {
    const SLOTS: usize = 8;
    const WORKERS: usize = 4;
    const OPS: usize = 2_000;
    let pool = Arc::new(pool(SLOTS, 64));
    let owned: Arc<Vec<AtomicBool>> =
        Arc::new((0..SLOTS).map(|_| AtomicBool::new(false)).collect());
    let violations = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..WORKERS)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let owned = Arc::clone(&owned);
            let violations = Arc::clone(&violations);
            std::thread::spawn(move || {
                for i in 0..OPS {
                    let Ok(slot) = pool.alloc() else { continue };
                    let idx = slot.offset / pool.slot_len();
                    if owned[idx].swap(true, Ordering::AcqRel) {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                    if i % 3 == 0 {
                        pool.mark_in_flight(slot).expect("in flight");
                        pool.mark_complete(slot).expect("complete");
                    }
                    owned[idx].store(false, Ordering::Release);
                    pool.free(slot).expect("free");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
    assert_eq!(violations.load(Ordering::Relaxed), 0, "slot double-issued");
}
