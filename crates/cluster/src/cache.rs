//! Byte-capacity LRU file cache.

use std::collections::HashMap;

use press_trace::FileId;

/// Slab index of a cache entry; `usize::MAX` is the null link.
type Link = usize;
const NIL: Link = usize::MAX;

#[derive(Debug, Clone)]
struct Entry {
    file: FileId,
    bytes: u64,
    prev: Link,
    next: Link,
}

/// An LRU cache of whole files, bounded by total bytes.
///
/// PRESS caches whole files in memory; a node's cache is the unit over
/// which the locality-conscious distribution operates. Recency is updated
/// on [`FileCache::touch`] (a cache hit) and on insertion.
///
/// Files larger than the capacity are refused rather than evicting the
/// entire cache (matching a server that simply streams oversized files
/// from disk).
///
/// # Example
///
/// ```
/// use press_cluster::FileCache;
/// use press_trace::FileId;
///
/// let mut c = FileCache::new(100);
/// c.insert(FileId(0), 40);
/// c.insert(FileId(1), 40);
/// c.touch(FileId(0)); // 0 is now most recent
/// let evicted = c.insert(FileId(2), 40);
/// assert_eq!(evicted, vec![FileId(1)]);
/// assert!(c.contains(FileId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct FileCache {
    capacity: u64,
    used: u64,
    map: HashMap<FileId, Link>,
    slab: Vec<Entry>,
    free: Vec<Link>,
    head: Link, // most recently used
    tail: Link, // least recently used
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl FileCache {
    /// Creates a cache holding at most `capacity_bytes` of file data.
    pub fn new(capacity_bytes: u64) -> Self {
        FileCache {
            capacity: capacity_bytes,
            used: 0,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `file` is cached (does not update recency).
    pub fn contains(&self, file: FileId) -> bool {
        self.map.contains_key(&file)
    }

    /// Records an access to `file`, marking it most recently used.
    /// Returns `true` on a hit. Hit/miss statistics are updated.
    pub fn touch(&mut self, file: FileId) -> bool {
        match self.map.get(&file).copied() {
            Some(idx) => {
                self.detach(idx);
                self.attach_front(idx);
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Inserts `file` of `bytes` bytes as the most recently used entry,
    /// evicting least-recently-used files as needed. Returns the evicted
    /// files (empty if none, or if the file was already cached — which
    /// just refreshes recency).
    ///
    /// Files larger than the capacity are not cached; an empty vector is
    /// returned and the cache is unchanged.
    pub fn insert(&mut self, file: FileId, bytes: u64) -> Vec<FileId> {
        if self.map.contains_key(&file) {
            self.touch(file);
            // touch() counted a hit, but this is bookkeeping, not an access.
            self.hits -= 1;
            return Vec::new();
        }
        if bytes > self.capacity {
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used + bytes > self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL, "capacity accounting out of sync");
            evicted.push(self.slab[lru].file);
            self.remove_index(lru);
            self.evictions += 1;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Entry {
                    file,
                    bytes,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slab.push(Entry {
                    file,
                    bytes,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.attach_front(idx);
        self.map.insert(file, idx);
        self.used += bytes;
        self.insertions += 1;
        evicted
    }

    /// Removes `file` if present; returns whether it was cached.
    pub fn remove(&mut self, file: FileId) -> bool {
        match self.map.get(&file).copied() {
            Some(idx) => {
                self.remove_index(idx);
                true
            }
            None => false,
        }
    }

    /// Iterates over cached files from most to least recently used.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, u64)> + '_ {
        CacheIter {
            cache: self,
            cur: self.head,
        }
    }

    /// `(hits, misses)` recorded by [`FileCache::touch`].
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// `(insertions, evictions)` over the cache's lifetime.
    pub fn churn_stats(&self) -> (u64, u64) {
        (self.insertions, self.evictions)
    }

    /// Resets hit/miss/churn statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.insertions = 0;
        self.evictions = 0;
    }

    fn detach(&mut self, idx: Link) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn attach_front(&mut self, idx: Link) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn remove_index(&mut self, idx: Link) {
        self.detach(idx);
        let entry = &self.slab[idx];
        self.used -= entry.bytes;
        self.map.remove(&entry.file);
        self.free.push(idx);
    }
}

struct CacheIter<'a> {
    cache: &'a FileCache,
    cur: Link,
}

impl Iterator for CacheIter<'_> {
    type Item = (FileId, u64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let e = &self.cache.slab[self.cur];
        self.cur = e.next;
        Some((e.file, e.bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut c = FileCache::new(100);
        assert!(c.is_empty());
        c.insert(FileId(1), 10);
        assert!(c.contains(FileId(1)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 10);
    }

    #[test]
    fn evicts_lru_order() {
        let mut c = FileCache::new(30);
        c.insert(FileId(1), 10);
        c.insert(FileId(2), 10);
        c.insert(FileId(3), 10);
        // 1 is LRU; inserting 20 bytes evicts 1 and 2.
        let ev = c.insert(FileId(4), 20);
        assert_eq!(ev, vec![FileId(1), FileId(2)]);
        assert!(c.contains(FileId(3)) && c.contains(FileId(4)));
    }

    #[test]
    fn touch_refreshes_recency() {
        let mut c = FileCache::new(30);
        c.insert(FileId(1), 10);
        c.insert(FileId(2), 10);
        c.insert(FileId(3), 10);
        assert!(c.touch(FileId(1)));
        let ev = c.insert(FileId(4), 10);
        assert_eq!(ev, vec![FileId(2)]);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut c = FileCache::new(20);
        c.insert(FileId(1), 10);
        c.insert(FileId(2), 10);
        let ev = c.insert(FileId(1), 10);
        assert!(ev.is_empty());
        assert_eq!(c.used_bytes(), 20);
        // 2 is now LRU.
        let ev = c.insert(FileId(3), 10);
        assert_eq!(ev, vec![FileId(2)]);
    }

    #[test]
    fn oversized_file_refused() {
        let mut c = FileCache::new(10);
        let ev = c.insert(FileId(1), 11);
        assert!(ev.is_empty());
        assert!(!c.contains(FileId(1)));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn remove_frees_space() {
        let mut c = FileCache::new(20);
        c.insert(FileId(1), 10);
        assert!(c.remove(FileId(1)));
        assert!(!c.remove(FileId(1)));
        assert_eq!(c.used_bytes(), 0);
        assert!(c.is_empty());
        // Slab slot is reused.
        c.insert(FileId(2), 20);
        assert!(c.contains(FileId(2)));
    }

    #[test]
    fn hit_and_churn_stats() {
        let mut c = FileCache::new(20);
        c.insert(FileId(1), 10);
        c.touch(FileId(1));
        c.touch(FileId(2));
        assert_eq!(c.hit_stats(), (1, 1));
        c.insert(FileId(2), 10);
        c.insert(FileId(3), 10);
        assert_eq!(c.churn_stats(), (3, 1));
        c.reset_stats();
        assert_eq!(c.hit_stats(), (0, 0));
        assert_eq!(c.churn_stats(), (0, 0));
    }

    #[test]
    fn iter_most_recent_first() {
        let mut c = FileCache::new(100);
        c.insert(FileId(1), 10);
        c.insert(FileId(2), 10);
        c.touch(FileId(1));
        let order: Vec<u32> = c.iter().map(|(f, _)| f.0).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn heavy_churn_consistency() {
        let mut c = FileCache::new(1000);
        for i in 0..10_000u32 {
            c.insert(FileId(i % 500), 17);
            if i % 3 == 0 {
                c.remove(FileId((i * 7) % 500));
            }
            assert!(c.used_bytes() <= 1000);
        }
        let listed: u64 = c.iter().map(|(_, b)| b).sum();
        assert_eq!(listed, c.used_bytes());
    }
}
