//! SCSI disk service-time model.

use press_sim::SimTime;

/// Disk access-time model, matching `µd` of Table 5:
/// `µd = (0.0188 + S/3000)⁻¹ ops/s` with `S` in KB — i.e. a fixed
/// 18.8 ms positioning cost plus a 3 MB/s transfer rate.
///
/// # Example
///
/// ```
/// use press_cluster::DiskModel;
/// use press_sim::SimTime;
///
/// let disk = DiskModel::default();
/// // A 16 KB read: 18.8 ms + 16/3000 s = ~24.1 ms.
/// let t = disk.access_time(16 * 1024);
/// assert!(t > SimTime::from_millis(24) && t < SimTime::from_millis(25));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Fixed positioning (seek + rotation + request) cost.
    pub fixed: SimTime,
    /// Sequential transfer rate in bytes/second.
    pub transfer_bytes_per_sec: f64,
}

impl DiskModel {
    /// The paper's disk: 18.8 ms fixed, 3 MB/s transfer (Table 5 uses
    /// S in units of 1024 bytes over 3000 KB/s).
    pub fn new() -> Self {
        DiskModel {
            fixed: SimTime::from_micros(18_800),
            transfer_bytes_per_sec: 3_000.0 * 1024.0,
        }
    }

    /// Service time to read a file of `bytes` bytes.
    pub fn access_time(&self, bytes: u64) -> SimTime {
        self.fixed + SimTime::from_secs_f64(bytes as f64 / self.transfer_bytes_per_sec)
    }

    /// Maximum sustainable read rate for files of `bytes` bytes, in ops/s
    /// (the `µd` rate of Table 5).
    pub fn rate(&self, bytes: u64) -> f64 {
        1.0 / self.access_time(bytes).as_secs_f64()
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table5_rate() {
        let d = DiskModel::default();
        // Table 5 at S = 16 KB: (0.0188 + 16/3000)^-1 = 41.4 ops/s.
        let r = d.rate(16 * 1024);
        assert!((r - 41.4).abs() < 0.5, "rate {r}");
    }

    #[test]
    fn zero_byte_access_is_fixed_cost() {
        let d = DiskModel::default();
        assert_eq!(d.access_time(0), SimTime::from_micros(18_800));
    }

    #[test]
    fn access_time_monotone_in_size() {
        let d = DiskModel::default();
        assert!(d.access_time(1 << 20) > d.access_time(1 << 10));
    }
}
