//! Simulated cluster substrate for the PRESS reproduction.
//!
//! The paper's testbed is eight Linux PCs (300 MHz Pentium II, 512 MB RAM,
//! SCSI disk) joined by switched Fast Ethernet and a Giganet cLAN. This
//! crate provides the per-node hardware model used by the discrete-event
//! simulation:
//!
//! * [`FileCache`] — a byte-capacity LRU cache of files (the in-memory file
//!   cache whose aggregate across nodes PRESS exploits);
//! * [`DiskModel`] — service-time model of the SCSI disk (`µd` in Table 5:
//!   18.8 ms fixed + 3 MB/s transfer);
//! * [`Node`] — a node's resources: CPU (with the external/internal time
//!   split of Figure 1), disk, and the internal/external NIC pairs;
//! * [`ServiceRates`] — the client-facing CPU cost constants (`µp`, `µm`).
//!
//! # Example
//!
//! ```
//! use press_cluster::{FileCache, NodeId};
//! use press_trace::FileId;
//!
//! let mut cache = FileCache::new(10_000);
//! assert!(cache.insert(FileId(1), 6_000).is_empty());
//! // Inserting beyond capacity evicts the least recently used file:
//! let evicted = cache.insert(FileId(2), 6_000);
//! assert_eq!(evicted, vec![FileId(1)]);
//! # let _ = NodeId(0);
//! ```

// Pure modeling code: no unsafe, enforced at the crate boundary.
#![forbid(unsafe_code)]
mod cache;
mod disk;
mod node;

pub use cache::FileCache;
pub use disk::DiskModel;
pub use node::{CpuCategory, Node, NodeId, ServiceRates};
