//! Per-node hardware state.

use press_sim::{Resource, SimTime};

use crate::cache::FileCache;
use crate::disk::DiskModel;

/// Index of a cluster node, `0..N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// CPU time-accounting categories, matching the split of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuCategory {
    /// External communication with clients plus request servicing
    /// ("Ext.comm+Service" in Figure 1).
    ExtCommService = 0,
    /// Intra-cluster communication ("Int.comm." in Figure 1).
    IntComm = 1,
}

/// Client-facing CPU cost constants (Table 5).
///
/// * `µp = 5882 ops/s` — request read + parse: 170 µs of CPU;
/// * `µm = (0.00027 + S/12500)⁻¹` — sending a locally stored reply to the
///   client: 270 µs fixed plus 80 ns/byte (TCP to the client over Fast
///   Ethernet, including the kernel copy);
/// * `µe = (0.000004 + size/12500)⁻¹` — the external NIC: 4 µs per message
///   plus the 12.5 MB/s Fast Ethernet wire. (Table 5 prints the divisor as
///   125000, but the text derives `µe` from "100 Mbits/s full-duplex
///   links", i.e. 12.5 MB/s; we follow the text.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceRates {
    /// CPU time to read and parse one request.
    pub parse: SimTime,
    /// Fixed CPU time to send a client reply.
    pub reply_fixed: SimTime,
    /// CPU rate for streaming reply bytes to the client, bytes/second.
    pub reply_bytes_per_sec: f64,
    /// External NIC fixed per-message time.
    pub ext_nic_fixed: SimTime,
    /// External link bandwidth, bytes/second.
    pub ext_wire_bytes_per_sec: f64,
}

impl ServiceRates {
    /// The Table 5 values.
    pub fn new() -> Self {
        ServiceRates {
            parse: SimTime::from_micros(170),
            reply_fixed: SimTime::from_micros(270),
            reply_bytes_per_sec: 12_500.0 * 1000.0,
            ext_nic_fixed: SimTime::from_micros(4),
            ext_wire_bytes_per_sec: 12.5e6,
        }
    }

    /// CPU time to send a `bytes`-byte reply to a client.
    pub fn reply_time(&self, bytes: u64) -> SimTime {
        self.reply_fixed + SimTime::from_secs_f64(bytes as f64 / self.reply_bytes_per_sec)
    }

    /// External NIC occupancy for a `bytes`-byte transfer.
    pub fn ext_nic_time(&self, bytes: u64) -> SimTime {
        self.ext_nic_fixed + SimTime::from_secs_f64(bytes as f64 / self.ext_wire_bytes_per_sec)
    }
}

impl Default for ServiceRates {
    fn default() -> Self {
        ServiceRates::new()
    }
}

/// One cluster node: CPU, disk, NICs, file cache, and load state.
///
/// "Load" is the number of open client connections, the metric PRESS uses
/// for its balancing decisions (threshold `T = 80` in the paper).
#[derive(Debug)]
pub struct Node {
    /// The node's identity.
    pub id: NodeId,
    /// The CPU, with [`CpuCategory`] accounting buckets.
    pub cpu: Resource,
    /// The SCSI disk (FIFO; service times from [`DiskModel`]).
    pub disk: Resource,
    /// Internal (intra-cluster) NIC, transmit side.
    pub nic_int_tx: Resource,
    /// Internal NIC, receive side.
    pub nic_int_rx: Resource,
    /// External (client-facing) NIC, transmit side.
    pub nic_ext_tx: Resource,
    /// External NIC, receive side.
    pub nic_ext_rx: Resource,
    /// In-memory file cache.
    pub cache: FileCache,
    /// The disk's timing model.
    pub disk_model: DiskModel,
    /// Open client connections (the load metric).
    pub open_connections: u32,
}

impl Node {
    /// Creates a node with a `cache_bytes` file cache.
    pub fn new(id: NodeId, cache_bytes: u64) -> Self {
        Node {
            id,
            cpu: Resource::new("cpu", 2),
            disk: Resource::new("disk", 1),
            nic_int_tx: Resource::new("nic-int-tx", 1),
            nic_int_rx: Resource::new("nic-int-rx", 1),
            nic_ext_tx: Resource::new("nic-ext-tx", 1),
            nic_ext_rx: Resource::new("nic-ext-rx", 1),
            cache: FileCache::new(cache_bytes),
            disk_model: DiskModel::default(),
            open_connections: 0,
        }
    }

    /// Fraction of CPU busy time spent on intra-cluster communication —
    /// the quantity plotted in Figure 1.
    pub fn intcomm_cpu_fraction(&self) -> f64 {
        let int = self.cpu.category_busy(CpuCategory::IntComm as usize);
        let ext = self.cpu.category_busy(CpuCategory::ExtCommService as usize);
        let total = int + ext;
        if total == SimTime::ZERO {
            0.0
        } else {
            int.as_secs_f64() / total.as_secs_f64()
        }
    }

    /// Resets all resource and cache statistics (end of warmup).
    pub fn reset_stats(&mut self) {
        self.cpu.reset_stats();
        self.disk.reset_stats();
        self.nic_int_tx.reset_stats();
        self.nic_int_rx.reset_stats();
        self.nic_ext_tx.reset_stats();
        self.nic_ext_rx.reset_stats();
        self.cache.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_rates_match_table5() {
        let r = ServiceRates::default();
        // µp = 5882 ops/s -> 170 µs.
        assert_eq!(r.parse, SimTime::from_micros(170));
        // µm at S = 16 KB: 0.00027 + 16/12500 = 1.55 ms.
        let t = r.reply_time(16 * 1024);
        assert!(
            t > SimTime::from_micros(1540) && t < SimTime::from_micros(1590),
            "{t}"
        );
    }

    #[test]
    fn ext_nic_time_includes_wire() {
        let r = ServiceRates::default();
        let t = r.ext_nic_time(12_500_000);
        assert!(t >= SimTime::from_secs(1));
    }

    #[test]
    fn node_cpu_fraction() {
        let mut n = Node::new(NodeId(3), 1 << 20);
        assert_eq!(n.intcomm_cpu_fraction(), 0.0);
        n.cpu.submit(
            SimTime::ZERO,
            SimTime::from_micros(300),
            CpuCategory::ExtCommService as usize,
        );
        n.cpu.submit(
            SimTime::ZERO,
            SimTime::from_micros(100),
            CpuCategory::IntComm as usize,
        );
        assert!((n.intcomm_cpu_fraction() - 0.25).abs() < 1e-12);
        n.reset_stats();
        assert_eq!(n.intcomm_cpu_fraction(), 0.0);
    }

    #[test]
    fn display_node_id() {
        assert_eq!(NodeId(5).to_string(), "node5");
    }
}
