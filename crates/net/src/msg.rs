//! The five intra-cluster message types of PRESS and their wire encoding.

/// Maximum payload of one intra-cluster data message.
///
/// Both the TCP and the VIA implementations of PRESS move file data through
/// fixed communication buffers; larger files are segmented. The paper's
/// bandwidth figures are quoted at this message size (32 KB), and Table 2's
/// mean file-message size (~7.4 KB for ~9.7 KB mean requests) reflects the
/// resulting segmentation.
pub const FILE_SEGMENT_BYTES: u64 = 32 * 1024;

/// The five types of intra-cluster messages (Section 2.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MessageType {
    /// Exchange of load information — very short, carries a connection count.
    Load,
    /// Window-based flow control — very short, carries empty buffer slots.
    Flow,
    /// Request forwarding — short, carries a file name.
    Forward,
    /// Exchange of caching information — short, carries a file name.
    Caching,
    /// File transfer — long, carries file data.
    File,
}

impl MessageType {
    /// All message types, in the row order of Tables 2 and 4.
    pub const ALL: [MessageType; 5] = [
        MessageType::Load,
        MessageType::Flow,
        MessageType::Forward,
        MessageType::Caching,
        MessageType::File,
    ];

    /// The row label used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            MessageType::Load => "Load",
            MessageType::Flow => "Flow",
            MessageType::Forward => "Forward",
            MessageType::Caching => "Caching",
            MessageType::File => "File",
        }
    }

    /// Application payload bytes carried by one message of this type.
    ///
    /// For [`MessageType::File`], pass the segment's data length; for the
    /// others the payload is fixed (a word for load/flow, a file name for
    /// forward/caching).
    pub fn payload_bytes(self, data_len: u64) -> u64 {
        match self {
            MessageType::Load => 4,
            MessageType::Flow => 4,
            MessageType::Forward => 44,
            MessageType::Caching => 50,
            MessageType::File => data_len + 24, // data + transfer metadata
        }
    }
}

impl std::fmt::Display for MessageType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a message is delivered to the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeliveryMode {
    /// Regular send/receive: a posted descriptor completes at the receiver,
    /// waking the receive thread (or, for TCP, the kernel delivers into a
    /// socket and the receive thread is woken).
    Regular,
    /// Remote memory write: the data lands directly in a registered buffer
    /// at the receiver, which discovers it by polling sequence numbers; no
    /// receiver-side interrupt or receive-thread involvement.
    Rmw,
}

/// Bytes on the wire for one message, including per-mode framing.
///
/// Calibrated against the mean message sizes of Tables 2 and 4:
///
/// * regular messages carry a 9-byte descriptor/stream header, so a 4-byte
///   flow-control payload shows up as ~13 bytes (Table 2, "Flow", 13.0);
/// * piggy-backing the sender's load appends 4 bytes to regular messages
///   (Table 2, PB row: flow 17.0 vs. 13.0 without piggy-backing);
/// * RMW small messages are raw word overwrites (Table 4, V1 "Flow": 4.0);
/// * RMW buffer entries for forward/caching/file carry a 5-byte
///   sequence-number/length trailer instead of the header and cannot
///   piggy-back load information.
///
/// # Example
///
/// ```
/// use press_net::{wire_bytes, MessageType, DeliveryMode};
///
/// // A regular flow-control message with piggy-backed load:
/// assert_eq!(wire_bytes(MessageType::Flow, 0, DeliveryMode::Regular, true), 17);
/// // The same as a remote memory write: a bare word.
/// assert_eq!(wire_bytes(MessageType::Flow, 0, DeliveryMode::Rmw, true), 4);
/// ```
pub fn wire_bytes(ty: MessageType, data_len: u64, mode: DeliveryMode, piggyback: bool) -> u64 {
    const REGULAR_HEADER: u64 = 9;
    const RMW_TRAILER: u64 = 5;
    const PIGGYBACK: u64 = 4;
    let payload = ty.payload_bytes(data_len);
    match mode {
        DeliveryMode::Regular => payload + REGULAR_HEADER + if piggyback { PIGGYBACK } else { 0 },
        DeliveryMode::Rmw => match ty {
            // Raw overwritable word: no framing, no piggy-backing.
            MessageType::Load | MessageType::Flow => payload,
            _ => payload + RMW_TRAILER,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_order_and_names() {
        let names: Vec<&str> = MessageType::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names, vec!["Load", "Flow", "Forward", "Caching", "File"]);
        assert_eq!(MessageType::File.to_string(), "File");
    }

    #[test]
    fn regular_sizes_match_table2() {
        // Table 2, non-PB rows: flow 13.0, forward 52.9, caching 58.9.
        assert_eq!(
            wire_bytes(MessageType::Flow, 0, DeliveryMode::Regular, false),
            13
        );
        assert_eq!(
            wire_bytes(MessageType::Forward, 0, DeliveryMode::Regular, false),
            53
        );
        assert_eq!(
            wire_bytes(MessageType::Caching, 0, DeliveryMode::Regular, false),
            59
        );
    }

    #[test]
    fn piggyback_adds_four_bytes_to_regular() {
        // Table 2, PB row: flow 17.0, forward 56.8, caching 62.8.
        assert_eq!(
            wire_bytes(MessageType::Flow, 0, DeliveryMode::Regular, true),
            17
        );
        assert_eq!(
            wire_bytes(MessageType::Forward, 0, DeliveryMode::Regular, true),
            57
        );
        assert_eq!(
            wire_bytes(MessageType::Caching, 0, DeliveryMode::Regular, true),
            63
        );
    }

    #[test]
    fn rmw_small_messages_are_bare_words() {
        // Table 4, V1/V2: flow mean size 4.0.
        assert_eq!(wire_bytes(MessageType::Load, 0, DeliveryMode::Rmw, true), 4);
        assert_eq!(
            wire_bytes(MessageType::Flow, 0, DeliveryMode::Rmw, false),
            4
        );
    }

    #[test]
    fn rmw_named_messages_use_trailer() {
        // Table 4, V2: forward 52.8 — close to the regular non-PB size.
        assert_eq!(
            wire_bytes(MessageType::Forward, 0, DeliveryMode::Rmw, true),
            49
        );
    }

    #[test]
    fn file_messages_scale_with_data() {
        let small = wire_bytes(MessageType::File, 1024, DeliveryMode::Regular, false);
        let big = wire_bytes(MessageType::File, 32 * 1024, DeliveryMode::Regular, false);
        assert_eq!(big - small, 31 * 1024);
        assert!(small > 1024);
    }
}
