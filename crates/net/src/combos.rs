//! The three calibrated protocol/network combinations of Section 3.2.

use press_sim::SimTime;

use crate::cost::CostModel;

/// A protocol/network combination from the paper's experiments.
///
/// All intra-cluster communication in a run uses one combination; the
/// communication with clients is always TCP over Fast Ethernet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProtocolCombo {
    /// TCP through additional Fast Ethernet interfaces.
    TcpFe,
    /// The complete TCP stack, run over the cLAN network.
    TcpClan,
    /// VIA over cLAN: user-level communication with RMW support.
    ViaClan,
}

impl ProtocolCombo {
    /// All combinations, in the bar order of Figure 3.
    pub const ALL: [ProtocolCombo; 3] = [
        ProtocolCombo::TcpFe,
        ProtocolCombo::TcpClan,
        ProtocolCombo::ViaClan,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolCombo::TcpFe => "TCP/FE",
            ProtocolCombo::TcpClan => "TCP/cLAN",
            ProtocolCombo::ViaClan => "VIA/cLAN",
        }
    }

    /// The calibrated cost model for this combination.
    ///
    /// Calibration anchors, all from the paper:
    ///
    /// * Per-message server-context CPU at the traces' ~10 KB mean file
    ///   size: **~280–330 µs/side for TCP** (Table 5's `µs`/`µg` give
    ///   ~350 µs) vs. **~30 µs + one copy for VIA** — the large
    ///   processor-overhead gap of Section 3.2, decomposed into a fixed
    ///   part (80 µs vs 30 µs) and a per-byte stack cost (20 ns/byte for
    ///   TCP on cLAN, 25 ns/byte on Fast Ethernet whose driver pays
    ///   per-frame costs on the 1.5 KB MTU; zero for VIA, which DMAs
    ///   from registered memory).
    /// * Application copy bandwidth 70 MB/s. Table 5's `S/125000` term
    ///   suggests 125 MB/s warm memcpy, but the experimental V4/V5 gains
    ///   (6.6% and further 4% from removing one copy each) imply the
    ///   effective rate on cold, freshly DMA'd buffers is lower; 70 MB/s
    ///   reproduces Figure 5's ladder.
    /// * Wire rates: 12.5 MB/s Fast Ethernet (observed 11.5), 125 MB/s
    ///   cLAN, 102 MB/s for VIA/cLAN (the NIC DMA engine's observed peak).
    /// * Raw 4-byte ping-pong latency: 82 / 76 / 9 µs (kept as reference
    ///   and reflected in `wire_latency`).
    ///
    /// Known compromise: with these values TCP/cLAN's CPU-limited
    /// streaming bandwidth at 32 KB messages is ~45 MB/s rather than the
    /// observed 32 MB/s. Matching the per-message totals of Table 5 was
    /// prioritized, because server throughput is governed by per-message
    /// CPU cost, not by the streaming micro-benchmark.
    pub fn cost_model(self) -> CostModel {
        const COPY_BW: f64 = 70.0e6;
        const TCP_CLAN_NS_PER_BYTE: f64 = 20.0;
        const TCP_FE_NS_PER_BYTE: f64 = 25.0;
        match self {
            ProtocolCombo::TcpFe => CostModel {
                name: "TCP/FE",
                send_cpu_fixed: SimTime::from_micros(80),
                recv_cpu_regular: SimTime::from_micros(80),
                recv_cpu_rmw: SimTime::from_micros(80),
                protocol_cpu_per_byte_ns: TCP_FE_NS_PER_BYTE,
                copy_bytes_per_sec: COPY_BW,
                wire_bytes_per_sec: 12.5e6,
                nic_fixed: SimTime::from_micros(4),
                wire_latency: SimTime::from_micros(20),
                raw_small_msg_latency: SimTime::from_micros(82),
                supports_rmw: false,
                explicit_flow_control: false,
                // No fast path over the kernel stack: V6 falls back to
                // the regular costs.
                fastpath_send_cpu_fixed: SimTime::from_micros(80),
                fastpath_doorbell_cpu: SimTime::ZERO,
                fastpath_recv_cpu_rmw: SimTime::from_micros(80),
            },
            ProtocolCombo::TcpClan => CostModel {
                name: "TCP/cLAN",
                send_cpu_fixed: SimTime::from_micros(80),
                recv_cpu_regular: SimTime::from_micros(80),
                recv_cpu_rmw: SimTime::from_micros(80),
                protocol_cpu_per_byte_ns: TCP_CLAN_NS_PER_BYTE,
                copy_bytes_per_sec: COPY_BW,
                wire_bytes_per_sec: 125.0e6,
                nic_fixed: SimTime::from_micros(3),
                wire_latency: SimTime::from_micros(10),
                raw_small_msg_latency: SimTime::from_micros(76),
                supports_rmw: false,
                explicit_flow_control: false,
                // No fast path over the kernel stack.
                fastpath_send_cpu_fixed: SimTime::from_micros(80),
                fastpath_doorbell_cpu: SimTime::ZERO,
                fastpath_recv_cpu_rmw: SimTime::from_micros(80),
            },
            ProtocolCombo::ViaClan => CostModel {
                name: "VIA/cLAN",
                send_cpu_fixed: SimTime::from_micros(30),
                recv_cpu_regular: SimTime::from_micros(30),
                recv_cpu_rmw: SimTime::from_micros(2),
                protocol_cpu_per_byte_ns: 0.0,
                copy_bytes_per_sec: COPY_BW,
                wire_bytes_per_sec: 102.0e6,
                nic_fixed: SimTime::from_micros(3),
                wire_latency: SimTime::from_micros(5),
                raw_small_msg_latency: SimTime::from_micros(9),
                supports_rmw: true,
                explicit_flow_control: true,
                // V6 fast path: the 30 µs send side decomposes into
                // ~12 µs of descriptor work once the mutexed queues and
                // per-send staging allocation are gone, plus ~6 µs of
                // doorbell (amortized over the batch). Completion reaping
                // from the lock-free ring undercuts the 2 µs polled-RMW
                // consume slightly.
                fastpath_send_cpu_fixed: SimTime::from_micros(12),
                fastpath_doorbell_cpu: SimTime::from_micros(6),
                fastpath_recv_cpu_rmw: SimTime::from_nanos(1_500),
            },
        }
    }
}

impl std::fmt::Display for ProtocolCombo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_overhead_clearly_exceeds_via() {
        // Section 3.2 quotes a factor-of-8 gap for the raw protocol
        // overhead. Our server-context decomposition folds thread hand-off
        // costs (paid by both protocols) into the fixed terms, so the
        // per-message fixed ratio here is smaller (~2.7); the gap at the
        // ~10 KB working point is checked in
        // `per_message_cost_at_10kb_matches_table5`.
        let tcp = ProtocolCombo::TcpClan.cost_model().small_message_cpu();
        let via = ProtocolCombo::ViaClan.cost_model().small_message_cpu();
        let ratio = tcp.as_nanos() as f64 / via.as_nanos() as f64;
        assert!(ratio > 2.0, "ratio {ratio}");
    }

    #[test]
    fn streaming_bandwidths_match_observed() {
        // Section 3.2 observed bandwidths at 32 KB messages:
        // 11.5, 32, 102 MB/s (within calibration slack).
        let fe = ProtocolCombo::TcpFe
            .cost_model()
            .streaming_bandwidth(32_768);
        assert!(
            (11.0e6..13.0e6).contains(&fe),
            "TCP/FE {:.1} MB/s",
            fe / 1e6
        );
        // TCP/cLAN: above the 32 MB/s observation (documented compromise)
        // but well below both the wire and VIA.
        let clan = ProtocolCombo::TcpClan
            .cost_model()
            .streaming_bandwidth(32_768);
        assert!(
            (26.0e6..60.0e6).contains(&clan),
            "TCP/cLAN {:.1} MB/s",
            clan / 1e6
        );
        let via = ProtocolCombo::ViaClan
            .cost_model()
            .streaming_bandwidth(32_768);
        assert!(
            (95.0e6..107.0e6).contains(&via),
            "VIA/cLAN {:.1} MB/s",
            via / 1e6
        );
    }

    #[test]
    fn raw_latencies_match_section_3_2() {
        assert_eq!(
            ProtocolCombo::TcpFe.cost_model().raw_small_msg_latency,
            SimTime::from_micros(82)
        );
        assert_eq!(
            ProtocolCombo::TcpClan.cost_model().raw_small_msg_latency,
            SimTime::from_micros(76)
        );
        assert_eq!(
            ProtocolCombo::ViaClan.cost_model().raw_small_msg_latency,
            SimTime::from_micros(9)
        );
    }

    #[test]
    fn per_message_cost_at_10kb_matches_table5() {
        // Table 5 at S = 10 KB: TCP µs-side cost ≈ 270 + 80 = 350 µs;
        // VIA ≈ 30 + 80 = 110 µs. Our decomposition should land within
        // ~30% of those totals (the send side; Table 5 folds thread and
        // NIC shares differently).
        let bytes = 10 * 1024;
        let tcp = ProtocolCombo::TcpClan.cost_model();
        let tcp_side = (tcp.send_cpu_fixed + tcp.protocol_byte_time(bytes)).as_micros() as f64;
        assert!((200.0..400.0).contains(&tcp_side), "tcp {tcp_side}");
        let via = ProtocolCombo::ViaClan.cost_model();
        let via_side = (via.send_cpu_fixed + via.copy_time(bytes)).as_micros() as f64;
        assert!((90.0..210.0).contains(&via_side), "via {via_side}");
        assert!(tcp_side / via_side > 1.5);
    }

    #[test]
    fn only_via_supports_rmw_and_needs_flow_control() {
        for combo in ProtocolCombo::ALL {
            let m = combo.cost_model();
            assert_eq!(m.supports_rmw, combo == ProtocolCombo::ViaClan);
            assert_eq!(m.explicit_flow_control, combo == ProtocolCombo::ViaClan);
        }
    }

    #[test]
    fn names_match_figures() {
        let names: Vec<&str> = ProtocolCombo::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["TCP/FE", "TCP/cLAN", "VIA/cLAN"]);
    }
}
