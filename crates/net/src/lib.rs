//! Intra-cluster communication cost models for the PRESS reproduction.
//!
//! The paper evaluates PRESS under three protocol/network combinations
//! (Section 3.2):
//!
//! * **TCP/FE** — TCP over switched Fast Ethernet: 82 µs 4-byte message,
//!   11.5 MB/s observed bandwidth at 32 KB messages;
//! * **TCP/cLAN** — the full TCP stack over the Giganet cLAN: 76 µs 4-byte
//!   message, 32 MB/s observed bandwidth;
//! * **VIA/cLAN** — user-level VIA over cLAN: 9 µs 4-byte message,
//!   102 MB/s observed bandwidth, with remote memory writes (RMW).
//!
//! This crate captures those combinations as [`CostModel`]s: per-message
//! fixed CPU overheads at sender and receiver (regular vs. RMW delivery),
//! per-byte memory-copy cost, NIC occupancy and wire bandwidth. It also
//! defines the five intra-cluster message types of PRESS (Section 2.2) and
//! the per-type counters that reproduce Tables 2 and 4.
//!
//! # Example
//!
//! ```
//! use press_net::{ProtocolCombo, MessageType};
//!
//! let via = ProtocolCombo::ViaClan.cost_model();
//! let tcp = ProtocolCombo::TcpClan.cost_model();
//! // User-level communication costs far less CPU per message:
//! assert!(tcp.small_message_cpu() > via.small_message_cpu());
//! // ... and transfers bytes without per-byte stack processing:
//! assert_eq!(via.protocol_cpu_per_byte_ns, 0.0);
//! assert!(tcp.protocol_cpu_per_byte_ns > 0.0);
//! # let _ = MessageType::File;
//! ```

// Pure modeling code: no unsafe, enforced at the crate boundary.
#![forbid(unsafe_code)]
mod combos;
mod cost;
mod counters;
mod msg;

pub use combos::ProtocolCombo;
pub use cost::{
    fastpath_recv_cost, fastpath_send_cost, recv_cost, send_cost, CostModel, EndpointCost,
};
pub use counters::{CounterRow, MsgCounters};
pub use msg::{wire_bytes, DeliveryMode, MessageType, FILE_SEGMENT_BYTES};
