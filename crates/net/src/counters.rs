//! Per-message-type accounting: the rows of Tables 2 and 4.

use press_telem::{Counter, Registry};

use crate::msg::MessageType;

/// Message and byte counts for every intra-cluster message type.
///
/// # Example
///
/// ```
/// use press_net::{MsgCounters, MessageType};
///
/// let mut c = MsgCounters::default();
/// c.record(MessageType::File, 7400);
/// c.record(MessageType::Flow, 13);
/// assert_eq!(c.count(MessageType::File), 1);
/// assert_eq!(c.total_count(), 2);
/// assert_eq!(c.total_bytes(), 7413);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MsgCounters {
    counters: [Counter; 5],
}

impl MsgCounters {
    /// Records one message of `wire_bytes` bytes.
    pub fn record(&mut self, ty: MessageType, wire_bytes: u64) {
        self.counters[Self::index(ty)].add(wire_bytes);
    }

    /// Message count for one type.
    pub fn count(&self, ty: MessageType) -> u64 {
        self.counters[Self::index(ty)].count()
    }

    /// Byte count for one type.
    pub fn bytes(&self, ty: MessageType) -> u64 {
        self.counters[Self::index(ty)].bytes()
    }

    /// Mean message size for one type.
    pub fn mean_size(&self, ty: MessageType) -> f64 {
        self.counters[Self::index(ty)].mean_size()
    }

    /// Total messages across all types (the TOTAL row of Tables 2 and 4).
    pub fn total_count(&self) -> u64 {
        self.counters.iter().map(|c| c.count()).sum()
    }

    /// Total bytes across all types.
    pub fn total_bytes(&self) -> u64 {
        self.counters.iter().map(|c| c.bytes()).sum()
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &MsgCounters) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            a.merge(*b);
        }
    }

    /// Produces the table rows (one per type, in paper order).
    pub fn rows(&self) -> Vec<CounterRow> {
        MessageType::ALL
            .iter()
            .map(|&ty| CounterRow {
                msg_type: ty.name().to_string(),
                count: self.count(ty),
                bytes: self.bytes(ty),
                mean_size: self.mean_size(ty),
            })
            .collect()
    }

    /// Formats the counters like a Table 2/4 block, with counts in
    /// thousands and bytes in MB as in the paper, scaled by
    /// `scale` (used to extrapolate a sampled run to the full trace).
    pub fn format_table(&self, scale: f64) -> String {
        let mut out = format!(
            "{:<9} {:>12} {:>12} {:>10}\n",
            "Msg type", "Num msgs (K)", "Num bytes(MB)", "Avg size"
        );
        for row in self.rows() {
            out.push_str(&format!(
                "{:<9} {:>12.1} {:>12.1} {:>10.1}\n",
                row.msg_type,
                row.count as f64 * scale / 1e3,
                row.bytes as f64 * scale / 1e6,
                row.mean_size,
            ));
        }
        out.push_str(&format!(
            "{:<9} {:>12.1} {:>12.1} {:>10}\n",
            "TOTAL",
            self.total_count() as f64 * scale / 1e3,
            self.total_bytes() as f64 * scale / 1e6,
            "-",
        ));
        out
    }

    /// Publishes the counters into a telemetry [`Registry`] as the
    /// labeled series `press_msgs` / `press_msg_bytes`, one label set
    /// per message type plus any caller-supplied labels (node, protocol,
    /// version, ...).
    pub fn fill_registry(&self, reg: &mut Registry, extra_labels: &[(&str, &str)]) {
        for &ty in MessageType::ALL.iter() {
            let mut labels: Vec<(&str, &str)> = extra_labels.to_vec();
            labels.push(("type", ty.name()));
            reg.inc("press_msgs", &labels, self.count(ty));
            reg.inc("press_msg_bytes", &labels, self.bytes(ty));
        }
    }

    fn index(ty: MessageType) -> usize {
        MessageType::ALL
            .iter()
            .position(|&t| t == ty)
            .expect("MessageType::ALL covers every variant")
    }
}

/// One row of a Table 2/4-style report.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterRow {
    /// Message type name.
    pub msg_type: String,
    /// Number of messages.
    pub count: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Mean message size in bytes.
    pub mean_size: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_type() {
        let mut c = MsgCounters::default();
        c.record(MessageType::Load, 4);
        c.record(MessageType::Load, 4);
        c.record(MessageType::File, 1000);
        assert_eq!(c.count(MessageType::Load), 2);
        assert_eq!(c.bytes(MessageType::Load), 8);
        assert_eq!(c.count(MessageType::Flow), 0);
        assert_eq!(c.mean_size(MessageType::File), 1000.0);
    }

    #[test]
    fn totals_and_merge() {
        let mut a = MsgCounters::default();
        a.record(MessageType::Forward, 53);
        let mut b = MsgCounters::default();
        b.record(MessageType::Forward, 57);
        b.record(MessageType::Caching, 59);
        a.merge(&b);
        assert_eq!(a.total_count(), 3);
        assert_eq!(a.total_bytes(), 169);
        assert_eq!(a.mean_size(MessageType::Forward), 55.0);
    }

    #[test]
    fn rows_in_paper_order() {
        let c = MsgCounters::default();
        let rows = c.rows();
        let names: Vec<&str> = rows.iter().map(|r| r.msg_type.as_str()).collect();
        assert_eq!(names, vec!["Load", "Flow", "Forward", "Caching", "File"]);
    }

    #[test]
    fn fills_registry_with_labeled_series() {
        let mut c = MsgCounters::default();
        c.record(MessageType::Load, 4);
        c.record(MessageType::File, 1000);
        let mut reg = Registry::default();
        c.fill_registry(&mut reg, &[("node", "2")]);
        let recs = reg.records();
        // Five types x two series, all carrying the extra label.
        assert_eq!(recs.len(), 10);
        assert!(recs
            .iter()
            .all(|r| r.labels.contains(&("node".to_string(), "2".to_string()))));
        let file_bytes = recs
            .iter()
            .find(|r| {
                r.name == "press_msg_bytes"
                    && r.labels.contains(&("type".to_string(), "File".to_string()))
            })
            .expect("File bytes series");
        assert_eq!(file_bytes.value, press_telem::MetricValue::Counter(1000));
    }

    #[test]
    fn format_table_scales() {
        let mut c = MsgCounters::default();
        for _ in 0..1000 {
            c.record(MessageType::File, 7400);
        }
        let table = c.format_table(10.0);
        // 1000 msgs * 10 = 10.0 K
        assert!(table.contains("10.0"), "{table}");
        assert!(table.contains("TOTAL"));
    }
}
