//! Per-message cost decomposition.

use press_sim::SimTime;

use crate::msg::DeliveryMode;

/// Calibrated costs of one protocol/network combination.
///
/// The decomposition follows the paper's measurements. Two cost families
/// matter and must not be conflated:
///
/// * **Server-context per-message CPU costs** — what a send or receive
///   costs PRESS, including protocol stack, thread hand-offs (main thread →
///   send thread, receive thread → main thread) and descriptor management.
///   These are the fixed terms of the Table 5 service rates: ~270 µs per
///   side for TCP (`µs`, `µg`, `µf` ≈ 1/3676 s), ~30 µs per side for VIA.
/// * **Microbenchmark latency** — the paper's "sending a 4-byte message
///   takes 82/76/9 µs", a raw ping-pong number without server threads. It
///   informs `wire_latency` but not CPU occupancy.
///
/// Per-byte costs: TCP charges `protocol_cpu_per_byte` on each side
/// (kernel copies, checksums, segmentation). VIA transfers DMA directly
/// from registered memory, so its per-byte CPU cost is zero except for
/// the *application-level* copies that the V0–V4 server versions perform,
/// charged at `copy_bytes_per_sec` (70 MB/s effective on cold buffers;
/// see [`crate::ProtocolCombo::cost_model`] for the calibration).
///
/// Use [`crate::ProtocolCombo::cost_model`] for the calibrated instances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Human-readable name ("TCP/FE", ...).
    pub name: &'static str,
    /// Fixed server-context CPU cost to send one message.
    pub send_cpu_fixed: SimTime,
    /// Fixed server-context CPU cost to receive a regular message:
    /// interrupt, receive-thread wakeup, demultiplexing, digest hand-off.
    pub recv_cpu_regular: SimTime,
    /// Fixed CPU cost to consume a remote-memory-write message discovered
    /// by polling (no interrupt, no receive thread).
    pub recv_cpu_rmw: SimTime,
    /// Protocol per-byte CPU cost (ns/byte), charged on both sides.
    /// Zero for VIA (DMA from registered memory).
    pub protocol_cpu_per_byte_ns: f64,
    /// Application memory-copy bandwidth in bytes/second; used for the
    /// optional tx/rx copies of the VIA server versions.
    pub copy_bytes_per_sec: f64,
    /// Raw wire bandwidth in bytes/second.
    pub wire_bytes_per_sec: f64,
    /// NIC per-message processing time (the 3 µs of `µi` in Table 5).
    pub nic_fixed: SimTime,
    /// One-way propagation + switching latency.
    pub wire_latency: SimTime,
    /// Raw 4-byte ping-pong latency from Section 3.2, for reference.
    pub raw_small_msg_latency: SimTime,
    /// Whether the protocol supports remote memory writes.
    pub supports_rmw: bool,
    /// Whether the server must run its own window-based flow control
    /// (true for VIA; TCP provides flow control transparently).
    pub explicit_flow_control: bool,
    /// Fixed server-context CPU to send one message on the V6 fast path,
    /// *excluding* the doorbell: lock-free descriptor post and slab-pool
    /// buffer management replace the mutexed queues and per-send
    /// allocation folded into `send_cpu_fixed`. Equal to
    /// `send_cpu_fixed` for protocols without a fast path.
    pub fastpath_send_cpu_fixed: SimTime,
    /// CPU cost of ringing one doorbell (an uncached PCI write plus NIC
    /// wakeup on real VIA hardware), amortized over the batch size by
    /// [`fastpath_send_cost`]. Zero for protocols without a fast path
    /// (their doorbell share stays inside `send_cpu_fixed`).
    pub fastpath_doorbell_cpu: SimTime,
    /// Fixed CPU to consume an RMW message on the fast path: the
    /// polling loop reaps a lock-free completion ring instead of locking
    /// a queue. Equal to `recv_cpu_rmw` for protocols without a fast
    /// path.
    pub fastpath_recv_cpu_rmw: SimTime,
}

impl CostModel {
    /// Fixed server-context CPU spent on a minimal message, summed over
    /// both endpoints. The paper quotes VIA's overhead as roughly a factor
    /// of 8 below TCP's; see the crate-level example.
    pub fn small_message_cpu(&self) -> SimTime {
        self.send_cpu_fixed + self.recv_cpu_regular
    }

    /// CPU time for the protocol to push/pull `bytes` through the stack
    /// (one side).
    pub fn protocol_byte_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 * self.protocol_cpu_per_byte_ns * 1e-9)
    }

    /// CPU time to copy `bytes` through memory once (application copy).
    pub fn copy_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.copy_bytes_per_sec)
    }

    /// Wire occupancy (serialization time) of `bytes`.
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.wire_bytes_per_sec)
    }

    /// Effective streaming bandwidth for messages of `msg_bytes`, in
    /// bytes/second: the minimum of the wire rate and the sender-CPU rate.
    /// Reproduces the paper's observed bandwidths at 32 KB messages.
    pub fn streaming_bandwidth(&self, msg_bytes: u64) -> f64 {
        let cpu_per_msg = (self.send_cpu_fixed + self.protocol_byte_time(msg_bytes)).as_secs_f64();
        let cpu_rate = msg_bytes as f64 / cpu_per_msg;
        cpu_rate.min(self.wire_bytes_per_sec)
    }
}

/// CPU and NIC demands charged to one endpoint for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EndpointCost {
    /// Demand on the endpoint's CPU.
    pub cpu: SimTime,
    /// Occupancy of the endpoint's NIC (includes wire serialization).
    pub nic: SimTime,
}

/// Costs charged to the *sender* of a message of `bytes` wire bytes.
///
/// `tx_copy` is true when the implementation copies the payload into a
/// registered/staging buffer before transmission (all VIA versions of
/// PRESS except V5, which registers the whole file cache with VIA). TCP's
/// kernel copy is already part of `protocol_cpu_per_byte_ns`, so TCP
/// callers pass `false`.
///
/// # Example
///
/// ```
/// use press_net::{send_cost, ProtocolCombo};
///
/// let m = ProtocolCombo::ViaClan.cost_model();
/// let with_copy = send_cost(&m, 32 * 1024, true);
/// let zero_copy = send_cost(&m, 32 * 1024, false);
/// assert!(with_copy.cpu > zero_copy.cpu);
/// assert_eq!(with_copy.nic, zero_copy.nic);
/// ```
pub fn send_cost(model: &CostModel, bytes: u64, tx_copy: bool) -> EndpointCost {
    let mut cpu = model.send_cpu_fixed + model.protocol_byte_time(bytes);
    if tx_copy {
        cpu += model.copy_time(bytes);
    }
    EndpointCost {
        cpu,
        nic: model.nic_fixed + model.wire_time(bytes),
    }
}

/// Costs charged to the *receiver* of a message of `bytes` wire bytes.
///
/// `rx_copy` is true when the payload must be copied out of the
/// communication buffer (VIA file payloads copy until version V4 starts
/// sending replies straight out of the large RMW buffer).
///
/// # Example
///
/// ```
/// use press_net::{recv_cost, DeliveryMode, ProtocolCombo};
///
/// let m = ProtocolCombo::ViaClan.cost_model();
/// let regular = recv_cost(&m, 1024, DeliveryMode::Regular, true);
/// let rmw = recv_cost(&m, 1024, DeliveryMode::Rmw, true);
/// // RMW avoids the interrupt/receive-thread fixed cost:
/// assert!(rmw.cpu < regular.cpu);
/// ```
pub fn recv_cost(model: &CostModel, bytes: u64, mode: DeliveryMode, rx_copy: bool) -> EndpointCost {
    let mut cpu = match mode {
        DeliveryMode::Regular => model.recv_cpu_regular,
        DeliveryMode::Rmw => model.recv_cpu_rmw,
    } + model.protocol_byte_time(bytes);
    if rx_copy {
        cpu += model.copy_time(bytes);
    }
    EndpointCost {
        cpu,
        nic: model.nic_fixed + model.wire_time(bytes),
    }
}

/// Costs charged to the *sender* of one message on the V6 fast path.
///
/// The fast path never copies (scatter-gather descriptors reference the
/// slab header and registered cache pages in place), posts through
/// lock-free rings, and shares one doorbell among `batch` messages, so
/// the per-message CPU is
/// `fastpath_send_cpu_fixed + fastpath_doorbell_cpu / batch` plus the
/// protocol's per-byte time. NIC and wire occupancy are unchanged: the
/// NIC still processes every descriptor and every byte.
///
/// # Example
///
/// ```
/// use press_net::{fastpath_send_cost, send_cost, ProtocolCombo};
///
/// let m = ProtocolCombo::ViaClan.cost_model();
/// let v5 = send_cost(&m, 512, false);
/// let v6 = fastpath_send_cost(&m, 512, 4);
/// assert!(v6.cpu < v5.cpu);
/// assert_eq!(v6.nic, v5.nic);
/// ```
pub fn fastpath_send_cost(model: &CostModel, bytes: u64, batch: usize) -> EndpointCost {
    let doorbell_share =
        SimTime::from_nanos(model.fastpath_doorbell_cpu.as_nanos() / batch.max(1) as u64);
    EndpointCost {
        cpu: model.fastpath_send_cpu_fixed + doorbell_share + model.protocol_byte_time(bytes),
        nic: model.nic_fixed + model.wire_time(bytes),
    }
}

/// Costs charged to the *receiver* of one message on the V6 fast path.
///
/// Regular (interrupt-driven) messages cost the same as ever; RMW
/// messages are reaped from a lock-free completion ring at
/// `fastpath_recv_cpu_rmw`. The fast path is zero-copy on the receive
/// side by construction (V4's behavior), so there is no `rx_copy` knob.
pub fn fastpath_recv_cost(model: &CostModel, bytes: u64, mode: DeliveryMode) -> EndpointCost {
    let cpu = match mode {
        DeliveryMode::Regular => model.recv_cpu_regular,
        DeliveryMode::Rmw => model.fastpath_recv_cpu_rmw,
    } + model.protocol_byte_time(bytes);
    EndpointCost {
        cpu,
        nic: model.nic_fixed + model.wire_time(bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combos::ProtocolCombo;

    #[test]
    fn copy_and_wire_time_scale_linearly() {
        let m = ProtocolCombo::ViaClan.cost_model();
        assert_eq!(m.copy_time(0), SimTime::ZERO);
        let one = m.copy_time(70_000);
        assert_eq!(one, SimTime::from_millis(1)); // 70 MB/s
    }

    #[test]
    fn send_cost_components() {
        let m = ProtocolCombo::ViaClan.cost_model();
        let c = send_cost(&m, 0, false);
        assert_eq!(c.cpu, m.send_cpu_fixed);
        assert_eq!(c.nic, m.nic_fixed);
    }

    #[test]
    fn rx_copy_adds_copy_time() {
        let m = ProtocolCombo::ViaClan.cost_model();
        let a = recv_cost(&m, 70_000, DeliveryMode::Rmw, true);
        let b = recv_cost(&m, 70_000, DeliveryMode::Rmw, false);
        assert_eq!(a.cpu - b.cpu, SimTime::from_millis(1));
    }

    #[test]
    fn fastpath_beats_regular_via_costs() {
        let m = ProtocolCombo::ViaClan.cost_model();
        // Small-message send: even unbatched, the lock-free path wins.
        let v5 = send_cost(&m, 4, false);
        let v6 = fastpath_send_cost(&m, 4, 1);
        assert!(v6.cpu < v5.cpu, "{:?} vs {:?}", v6.cpu, v5.cpu);
        // Batching amortizes the doorbell further.
        let batched = fastpath_send_cost(&m, 4, 8);
        assert!(batched.cpu < v6.cpu);
        // RMW receive: ring reap beats the polled consume.
        let r5 = recv_cost(&m, 4, DeliveryMode::Rmw, false);
        let r6 = fastpath_recv_cost(&m, 4, DeliveryMode::Rmw);
        assert!(r6.cpu < r5.cpu);
        // NIC and wire occupancy are identical: the fast path saves
        // host CPU, not wire time.
        assert_eq!(v6.nic, v5.nic);
        assert_eq!(r6.nic, r5.nic);
    }

    #[test]
    fn fastpath_is_identity_for_tcp() {
        // TCP combos have no user-level fast path; V6 degenerates to V5
        // costs so the ladder stays monotone but flat.
        for combo in [ProtocolCombo::TcpFe, ProtocolCombo::TcpClan] {
            let m = combo.cost_model();
            assert_eq!(fastpath_send_cost(&m, 1024, 8), send_cost(&m, 1024, false));
            assert_eq!(
                fastpath_recv_cost(&m, 1024, DeliveryMode::Regular),
                recv_cost(&m, 1024, DeliveryMode::Regular, false)
            );
        }
    }

    #[test]
    fn doorbell_amortization_is_monotone() {
        let m = ProtocolCombo::ViaClan.cost_model();
        let mut last = fastpath_send_cost(&m, 0, 0).cpu; // batch clamps to 1
        for batch in 1..=8 {
            let c = fastpath_send_cost(&m, 0, batch).cpu;
            assert!(c <= last, "batch {batch}");
            last = c;
        }
        // Fully amortized, the cost approaches the doorbell-free fixed
        // part from above.
        assert!(last > m.fastpath_send_cpu_fixed);
    }

    #[test]
    fn tcp_per_byte_charged_both_sides() {
        let m = ProtocolCombo::TcpClan.cost_model();
        let s = send_cost(&m, 10_000, false);
        let r = recv_cost(&m, 10_000, DeliveryMode::Regular, false);
        assert!(s.cpu > m.send_cpu_fixed);
        assert!(r.cpu > m.recv_cpu_regular);
    }
}
