//! Property tests for [`ScenarioPlan`]: a plan is a pure function of its
//! seed and builder arguments — the determinism guarantee that makes the
//! chaos suite's report cards byte-identical across runs — and every
//! composed plan keeps its structural invariants (sorted triggers,
//! balanced client deltas, in-catalog updates).

use press_trace::{ScenarioOp, ScenarioPlan};
use proptest::prelude::*;

/// Builds the fully-composed plan the chaos suite exercises: a flash
/// crowd, a diurnal curve, working-set drift, and content churn.
#[allow(clippy::too_many_arguments)]
fn compose(
    seed: u64,
    start: u64,
    len: u64,
    surge: u32,
    amplitude: u32,
    steps: u32,
    drift_step: u32,
    updates: u32,
    catalog_len: u32,
) -> ScenarioPlan {
    ScenarioPlan::seeded(seed)
        .flash_crowd(start, start + len, surge)
        .diurnal(start, start + len, amplitude, steps)
        .drifting(start, (len / 4).max(1), drift_step, 3)
        .file_updates(start, (len / 8).max(1), updates, catalog_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Same seed and arguments, same plan — twice-built plans are equal,
    /// operation for operation.
    #[test]
    fn same_inputs_yield_identical_plans(
        seed in 0u64..=u64::MAX,
        start in 0u64..1_000_000,
        len in 1u64..1_000_000,
        surge in 1u32..10_000,
        amplitude in 1u32..10_000,
        steps in 2u32..32,
        drift_step in 0u32..1_000,
        updates in 0u32..64,
        catalog_len in 1u32..100_000,
    ) {
        let a = compose(seed, start, len, surge, amplitude, steps, drift_step, updates, catalog_len);
        let b = compose(seed, start, len, surge, amplitude, steps, drift_step, updates, catalog_len);
        prop_assert_eq!(a.schedule(), b.schedule());
        prop_assert_eq!(a, b);
    }

    /// The schedule is sorted by trigger whatever order the builders ran
    /// in, and every update stays inside the catalog — `assert_valid`
    /// accepts the composed plan with no base clients at all, because
    /// load scenarios never retire clients they did not add.
    #[test]
    fn composed_plans_keep_structural_invariants(
        seed in 0u64..=u64::MAX,
        start in 0u64..100_000,
        len in 8u64..100_000,
        surge in 1u32..10_000,
        amplitude in 1u32..10_000,
        steps in 2u32..32,
        updates in 0u32..64,
        catalog_len in 1u32..100_000,
    ) {
        let plan = compose(seed, start, len, surge, amplitude, steps, 17, updates, catalog_len);
        prop_assert!(plan.schedule().windows(2).all(|w| w[0].0 <= w[1].0));
        plan.assert_valid(0, catalog_len);
        // Load scenarios return to the base population.
        prop_assert_eq!(plan.net_clients(), 0);
        // The running population never dips below base even mid-plan.
        let mut cumulative = 0i64;
        for &(_, op) in plan.schedule() {
            if let ScenarioOp::ClientsDelta(d) = op {
                cumulative += d as i64;
                prop_assert!(cumulative >= 0, "plan retires clients it never added");
            }
        }
    }

    /// File-update draws depend only on the seed: replaying the builder
    /// with another seed moves the update targets, replaying with the
    /// same seed does not — and every target is in `0..catalog_len`.
    #[test]
    fn update_targets_are_seeded_and_in_catalog(
        seed in 0u64..u64::MAX - 1,
        count in 1u32..64,
        catalog_len in 1u32..100_000,
    ) {
        let targets = |s: u64| -> Vec<u32> {
            ScenarioPlan::seeded(s)
                .file_updates(0, 10, count, catalog_len)
                .schedule()
                .iter()
                .filter_map(|&(_, op)| match op {
                    ScenarioOp::FileUpdate(f) => Some(f),
                    _ => None,
                })
                .collect()
        };
        let a = targets(seed);
        prop_assert_eq!(a.len(), count as usize);
        prop_assert!(a.iter().all(|&f| f < catalog_len));
        prop_assert_eq!(a.clone(), targets(seed));
        // A different seed is allowed to collide only when the catalog is
        // too small to tell two draw streams apart.
        if catalog_len > 1024 && count >= 8 {
            prop_assert_ne!(a, targets(seed + 1));
        }
    }
}
