//! Trace statistics — the rows of Table 1.

/// Summary statistics of a workload, matching the columns of Table 1 in the
/// paper ("Main characteristics of the WWW server traces").
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Trace name (empty when derived from a bare spec).
    pub name: String,
    /// Number of distinct files.
    pub num_files: usize,
    /// Mean file size in bytes.
    pub avg_file_bytes: f64,
    /// Number of requests in the full trace.
    pub num_requests: u64,
    /// Popularity-weighted mean requested size in bytes.
    pub avg_request_bytes: f64,
}

impl TraceStats {
    /// Formats the stats as a Table 1 row:
    /// `name, num files, avg file size (KB), num requests, avg req size (KB)`.
    pub fn table_row(&self) -> String {
        format!(
            "{:<10} {:>8} {:>12.1} {:>12} {:>12.1}",
            self.name,
            self.num_files,
            self.avg_file_bytes / 1024.0,
            self.num_requests,
            self.avg_request_bytes / 1024.0,
        )
    }

    /// The header matching [`TraceStats::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<10} {:>8} {:>12} {:>12} {:>12}",
            "Logs", "Files", "AvgFile(KB)", "Requests", "AvgReq(KB)"
        )
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.table_row())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_formats_kilobytes() {
        let s = TraceStats {
            name: "Clarknet".into(),
            num_files: 28_864,
            avg_file_bytes: 14.2 * 1024.0,
            num_requests: 2_978_121,
            avg_request_bytes: 9.7 * 1024.0,
        };
        let row = s.table_row();
        assert!(row.contains("Clarknet"));
        assert!(row.contains("28864"));
        assert!(row.contains("14.2"));
        assert!(row.contains("9.7"));
        assert_eq!(s.to_string(), row);
    }

    #[test]
    fn header_aligns_with_row() {
        // Same number of columns; widths chosen to line up.
        let header = TraceStats::table_header();
        assert!(header.contains("AvgReq(KB)"));
    }
}
