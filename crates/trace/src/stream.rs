//! Workloads and request streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::catalog::{FileCatalog, FileId};
use crate::presets::{TracePreset, WorkloadSpec};
use crate::stats::TraceStats;
use crate::zipf::ZipfSampler;

/// A complete synthetic workload: file catalog plus popularity distribution.
///
/// Construction calibrates the size–popularity bias so that the expected
/// requested size matches the preset's Table 1 target (bisection over the
/// bias knob; the expectation is computed analytically from the Zipf
/// probabilities, so calibration is exact up to generation noise).
///
/// # Example
///
/// ```
/// use press_trace::{Workload, WorkloadSpec};
///
/// let wl = Workload::from_spec(WorkloadSpec::tiny(), 7);
/// let mut rng = rand::thread_rng();
/// let id = wl.sample(&mut rng);
/// assert!(wl.catalog().size(id) > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    spec: WorkloadSpec,
    catalog: FileCatalog,
    sampler: ZipfSampler,
}

impl Workload {
    /// Generates the workload for a paper trace preset.
    pub fn from_preset(preset: TracePreset, seed: u64) -> Self {
        Workload::from_spec(preset.spec(), seed)
    }

    /// Generates a workload from an explicit spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero files or zero mean size).
    pub fn from_spec(spec: WorkloadSpec, seed: u64) -> Self {
        let sampler = ZipfSampler::new(spec.num_files, spec.zipf_alpha);
        let max_bytes = (spec.avg_file_bytes * 64).max(1 << 20);
        let generate = |bias: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            FileCatalog::generate(
                spec.num_files,
                spec.avg_file_bytes,
                64,
                max_bytes,
                bias,
                &mut rng,
            )
        };
        // Bisection on the bias: expected requested size is monotonically
        // decreasing in bias (more bias -> popular files smaller).
        let target = spec.target_avg_request_bytes as f64;
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        let mut best = generate(spec.size_bias, seed);
        let mut best_err = f64::INFINITY;
        for _ in 0..12 {
            let mid = 0.5 * (lo + hi);
            let cat = generate(mid, seed);
            let expected = expected_request_bytes(&cat, &sampler);
            let err = (expected - target).abs();
            if err < best_err {
                best_err = err;
                best = cat;
            }
            if expected > target {
                lo = mid; // need more bias
            } else {
                hi = mid;
            }
            if err / target < 0.01 {
                break;
            }
        }
        Workload {
            spec,
            catalog: best,
            sampler,
        }
    }

    /// The generation spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The file catalog.
    pub fn catalog(&self) -> &FileCatalog {
        &self.catalog
    }

    /// The popularity distribution.
    pub fn sampler(&self) -> &ZipfSampler {
        &self.sampler
    }

    /// Draws the next requested file.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> FileId {
        FileId(self.sampler.sample(rng) as u32)
    }

    /// Expected requested size in bytes (popularity-weighted mean).
    pub fn expected_request_bytes(&self) -> f64 {
        expected_request_bytes(&self.catalog, &self.sampler)
    }

    /// Analytic trace statistics (the Table 1 row for this workload).
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            name: String::new(),
            num_files: self.catalog.len(),
            avg_file_bytes: self.catalog.mean_size(),
            num_requests: self.spec.num_requests,
            avg_request_bytes: self.expected_request_bytes(),
        }
    }

    /// A seeded infinite iterator of requests.
    pub fn stream(&self, seed: u64) -> RequestStream<'_> {
        RequestStream {
            workload: self,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

fn expected_request_bytes(catalog: &FileCatalog, sampler: &ZipfSampler) -> f64 {
    catalog
        .iter()
        .map(|(id, size)| sampler.probability(id.0 as usize) * size as f64)
        .sum()
}

/// Infinite, seeded iterator over requested files.
///
/// # Example
///
/// ```
/// use press_trace::{Workload, WorkloadSpec};
///
/// let wl = Workload::from_spec(WorkloadSpec::tiny(), 7);
/// let ids: Vec<_> = wl.stream(1).take(3).collect();
/// let again: Vec<_> = wl.stream(1).take(3).collect();
/// assert_eq!(ids, again); // same seed, same stream
/// ```
#[derive(Debug)]
pub struct RequestStream<'a> {
    workload: &'a Workload,
    rng: StdRng,
}

impl Iterator for RequestStream<'_> {
    type Item = FileId;

    fn next(&mut self) -> Option<FileId> {
        Some(self.workload.sample(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_request_size_target() {
        for preset in TracePreset::ALL {
            let wl = Workload::from_preset(preset, 11);
            let spec = preset.spec();
            let rel = (wl.expected_request_bytes() - spec.target_avg_request_bytes as f64).abs()
                / spec.target_avg_request_bytes as f64;
            assert!(
                rel < 0.10,
                "{preset}: expected request bytes off by {:.1}%",
                rel * 100.0
            );
        }
    }

    #[test]
    fn file_mean_stays_on_target() {
        let wl = Workload::from_preset(TracePreset::Nasa, 5);
        let target = TracePreset::Nasa.spec().avg_file_bytes as f64;
        let rel = (wl.catalog().mean_size() - target).abs() / target;
        assert!(rel < 0.05, "off by {:.1}%", rel * 100.0);
    }

    #[test]
    fn stream_is_deterministic() {
        let wl = Workload::from_spec(WorkloadSpec::tiny(), 3);
        let a: Vec<_> = wl.stream(9).take(100).collect();
        let b: Vec<_> = wl.stream(9).take(100).collect();
        assert_eq!(a, b);
        let c: Vec<_> = wl.stream(10).take(100).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn samples_are_in_range() {
        let wl = Workload::from_spec(WorkloadSpec::tiny(), 3);
        for id in wl.stream(4).take(1000) {
            assert!((id.0 as usize) < wl.catalog().len());
        }
    }

    #[test]
    fn popular_files_requested_more() {
        let wl = Workload::from_spec(WorkloadSpec::tiny(), 3);
        let mut counts = vec![0u32; wl.catalog().len()];
        for id in wl.stream(5).take(50_000) {
            counts[id.0 as usize] += 1;
        }
        let head: u32 = counts[..20].iter().sum();
        let tail: u32 = counts[counts.len() - 20..].iter().sum();
        assert!(head > tail * 5, "head {head} vs tail {tail}");
    }
}
