//! Seeded, deterministic chaos scenarios: time-varying load, working-set
//! drift, and mid-run file updates.
//!
//! The paper measures its cluster only under well-behaved, read-only
//! Zipf replays. A [`ScenarioPlan`] composes the adversity a production
//! web cluster actually sees — flash crowds, diurnal curves, content
//! churn — into a pure description that both engines replay identically.
//! Like `FaultPlan`, triggers are expressed in *completed requests
//! across the whole cluster*, which both engines count the same way, so
//! "surge at 25% of the run" means the same thing at any request rate.
//!
//! A plan is inert by default ([`ScenarioPlan::none`]): no operations,
//! no RNG draws, and scenario-aware code paths reduce to the originals.

/// One scenario operation, applied when the cluster-wide completed
/// request count reaches its trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioOp {
    /// Add (positive) or retire (negative) this many closed-loop
    /// clients, spread round-robin across the nodes.
    ClientsDelta(i32),
    /// Shift the working set: sampled file ids are rotated by this
    /// offset (mod catalog size) from now on. Models the reference
    /// locality moving to a different part of the corpus.
    Drift(u32),
    /// The file's content changed: every cached copy cluster-wide must
    /// be invalidated (the id is an index into the catalog).
    FileUpdate(u32),
}

/// A complete, seeded description of one chaos scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioPlan {
    /// Seed for any derived randomness (e.g. which files update).
    pub seed: u64,
    /// Operations as `(completed_requests_trigger, op)`, kept sorted by
    /// trigger (ties in insertion order).
    steps: Vec<(u64, ScenarioOp)>,
}

impl Default for ScenarioPlan {
    fn default() -> Self {
        ScenarioPlan::none()
    }
}

/// One splitmix64 step — private copy so this leaf crate stays
/// dependency-free; must match `press-sim`'s stream for a given state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ScenarioPlan {
    /// The inert plan: nothing ever happens.
    pub fn none() -> Self {
        ScenarioPlan {
            seed: 0,
            steps: Vec::new(),
        }
    }

    /// An empty plan carrying a seed, ready for builder composition.
    pub fn seeded(seed: u64) -> Self {
        ScenarioPlan {
            seed,
            steps: Vec::new(),
        }
    }

    /// Whether this plan can change anything at all.
    pub fn is_active(&self) -> bool {
        !self.steps.is_empty()
    }

    /// Adds one operation at a trigger (builder style).
    pub fn with_step(mut self, at: u64, op: ScenarioOp) -> Self {
        let idx = self.steps.partition_point(|&(t, _)| t <= at);
        self.steps.insert(idx, (at, op));
        self
    }

    /// A flash crowd: `surge` extra clients arrive at `start` completed
    /// requests and leave again at `end`.
    pub fn flash_crowd(mut self, start: u64, end: u64, surge: u32) -> Self {
        assert!(end > start, "flash crowd ends at {end} <= start {start}");
        self = self.with_step(start, ScenarioOp::ClientsDelta(surge as i32));
        self.with_step(end, ScenarioOp::ClientsDelta(-(surge as i32)))
    }

    /// A diurnal curve approximated by `steps` half-cosine increments:
    /// load ramps from the base population up by `amplitude` clients and
    /// back down across `[start, end]`, the way day traffic crests.
    pub fn diurnal(mut self, start: u64, end: u64, amplitude: u32, steps: u32) -> Self {
        assert!(end > start, "diurnal window ends at {end} <= start {start}");
        let steps = steps.max(2);
        let mut current: i64 = 0;
        for k in 0..=steps {
            let phase = k as f64 / steps as f64; // 0 -> 1 across the window
            let level = (amplitude as f64 * (std::f64::consts::PI * phase).sin()).round() as i64;
            let delta = level - current;
            if delta != 0 {
                let at = start + (end - start) * k as u64 / steps as u64;
                self = self.with_step(at, ScenarioOp::ClientsDelta(delta as i32));
                current = level;
            }
        }
        self
    }

    /// Working-set drift: every `every` completed requests from `start`,
    /// the sampled ids rotate by another `step` files, `times` times.
    pub fn drifting(mut self, start: u64, every: u64, step: u32, times: u32) -> Self {
        assert!(every > 0, "drift interval must be positive");
        let mut offset = 0u32;
        for k in 0..times {
            offset = offset.wrapping_add(step);
            self = self.with_step(start + every * k as u64, ScenarioOp::Drift(offset));
        }
        self
    }

    /// Mid-run content churn: `count` file updates at `every`-request
    /// intervals from `start`, hitting seeded-pseudorandom ids below
    /// `catalog_len`. Updates skew toward low ids (the popular end of a
    /// Zipf catalog) so invalidations actually evict cached copies.
    pub fn file_updates(mut self, start: u64, every: u64, count: u32, catalog_len: u32) -> Self {
        assert!(every > 0, "update interval must be positive");
        assert!(catalog_len > 0, "empty catalog cannot update files");
        let mut state = self.seed ^ 0xC0DE_F11E;
        for k in 0..count {
            let raw = splitmix64(&mut state) % catalog_len as u64;
            // Square toward zero: popular (low) ids update more often.
            let file = ((raw * raw) / catalog_len.max(1) as u64) as u32;
            self = self.with_step(start + every * k as u64, ScenarioOp::FileUpdate(file));
        }
        self
    }

    /// The operations as a sorted `(trigger, op)` schedule both engines
    /// apply in one deterministic order.
    pub fn schedule(&self) -> &[(u64, ScenarioOp)] {
        &self.steps
    }

    /// Net client delta over the whole plan (useful for validating that
    /// a scenario retires no more clients than it added).
    pub fn net_clients(&self) -> i64 {
        self.steps
            .iter()
            .map(|&(_, op)| match op {
                ScenarioOp::ClientsDelta(d) => d as i64,
                _ => 0,
            })
            .sum()
    }

    /// Panics if the plan is malformed: a cumulative client delta that
    /// dips below `-base_clients` (retiring clients that do not exist)
    /// or an update outside `0..catalog_len`.
    pub fn assert_valid(&self, base_clients: u64, catalog_len: u32) {
        let mut cumulative: i64 = 0;
        for &(at, op) in &self.steps {
            match op {
                ScenarioOp::ClientsDelta(d) => {
                    cumulative += d as i64;
                    assert!(
                        cumulative >= -(base_clients as i64),
                        "scenario retires more clients than exist at trigger {at}"
                    );
                }
                ScenarioOp::FileUpdate(f) => {
                    assert!(
                        f < catalog_len,
                        "scenario updates file {f} outside catalog of {catalog_len}"
                    );
                }
                ScenarioOp::Drift(_) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        let plan = ScenarioPlan::none();
        assert!(!plan.is_active());
        assert!(plan.schedule().is_empty());
    }

    #[test]
    fn flash_crowd_balances_and_orders() {
        let plan = ScenarioPlan::seeded(1).flash_crowd(1_000, 3_000, 64);
        assert_eq!(
            plan.schedule(),
            &[
                (1_000, ScenarioOp::ClientsDelta(64)),
                (3_000, ScenarioOp::ClientsDelta(-64)),
            ]
        );
        assert_eq!(plan.net_clients(), 0);
    }

    #[test]
    fn diurnal_ramps_up_then_down_to_zero() {
        let plan = ScenarioPlan::seeded(2).diurnal(0, 8_000, 100, 8);
        assert_eq!(plan.net_clients(), 0, "curve returns to base population");
        let peaks: i64 = plan
            .schedule()
            .iter()
            .map(|&(_, op)| match op {
                ScenarioOp::ClientsDelta(d) if d > 0 => d as i64,
                _ => 0,
            })
            .sum();
        assert_eq!(peaks, 100, "total ramp-up equals the amplitude");
        let mut cumulative = 0i64;
        let mut max_seen = 0i64;
        for &(_, op) in plan.schedule() {
            if let ScenarioOp::ClientsDelta(d) = op {
                cumulative += d as i64;
                max_seen = max_seen.max(cumulative);
            }
        }
        assert_eq!(max_seen, 100);
    }

    #[test]
    fn schedule_is_sorted_and_deterministic() {
        let build = || {
            ScenarioPlan::seeded(77)
                .flash_crowd(2_000, 6_000, 32)
                .drifting(1_000, 2_500, 500, 3)
                .file_updates(500, 1_500, 5, 10_000)
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same seed, same plan");
        assert!(a.schedule().windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn different_seeds_pick_different_update_files() {
        let files = |seed| -> Vec<u32> {
            ScenarioPlan::seeded(seed)
                .file_updates(0, 100, 16, 1 << 20)
                .schedule()
                .iter()
                .filter_map(|&(_, op)| match op {
                    ScenarioOp::FileUpdate(f) => Some(f),
                    _ => None,
                })
                .collect()
        };
        assert_ne!(files(1), files(2));
    }

    #[test]
    #[should_panic(expected = "retires more clients")]
    fn rejects_retiring_ghost_clients() {
        ScenarioPlan::seeded(0)
            .with_step(10, ScenarioOp::ClientsDelta(-5))
            .assert_valid(4, 100);
    }

    #[test]
    #[should_panic(expected = "outside catalog")]
    fn rejects_update_outside_catalog() {
        ScenarioPlan::seeded(0)
            .with_step(10, ScenarioOp::FileUpdate(100))
            .assert_valid(4, 100);
    }
}
