//! Workload presets matching Table 1 of the paper.

/// The four WWW server traces evaluated in the paper (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TracePreset {
    /// Commercial Internet provider trace: many small files.
    Clarknet,
    /// FORTH Institute (Greece): small trace, small requests.
    Forth,
    /// NASA Kennedy Space Center: few, large files; large requests.
    Nasa,
    /// Rutgers CS department, March 2000: large files.
    Rutgers,
}

impl TracePreset {
    /// All presets, in the order the paper's figures list them.
    pub const ALL: [TracePreset; 4] = [
        TracePreset::Clarknet,
        TracePreset::Forth,
        TracePreset::Nasa,
        TracePreset::Rutgers,
    ];

    /// The trace's display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            TracePreset::Clarknet => "Clarknet",
            TracePreset::Forth => "Forth",
            TracePreset::Nasa => "Nasa",
            TracePreset::Rutgers => "Rutgers",
        }
    }

    /// The generation parameters reproducing this trace's Table 1 row.
    pub fn spec(self) -> WorkloadSpec {
        // Table 1 of the paper. Sizes there are decimal-ish KB; we treat
        // them as KiB, which is within the calibration slack of the study.
        match self {
            TracePreset::Clarknet => WorkloadSpec {
                num_files: 28_864,
                avg_file_bytes: (14.2 * 1024.0) as u64,
                num_requests: 2_978_121,
                target_avg_request_bytes: (9.7 * 1024.0) as u64,
                zipf_alpha: 0.8,
                size_bias: 0.42,
            },
            TracePreset::Forth => WorkloadSpec {
                num_files: 11_931,
                avg_file_bytes: (19.3 * 1024.0) as u64,
                num_requests: 400_335,
                target_avg_request_bytes: (8.8 * 1024.0) as u64,
                zipf_alpha: 0.8,
                size_bias: 0.72,
            },
            TracePreset::Nasa => WorkloadSpec {
                num_files: 9_129,
                avg_file_bytes: (27.6 * 1024.0) as u64,
                num_requests: 3_147_684,
                target_avg_request_bytes: (21.8 * 1024.0) as u64,
                zipf_alpha: 0.8,
                size_bias: 0.22,
            },
            TracePreset::Rutgers => WorkloadSpec {
                num_files: 18_370,
                avg_file_bytes: (27.3 * 1024.0) as u64,
                num_requests: 498_646,
                target_avg_request_bytes: (19.0 * 1024.0) as u64,
                zipf_alpha: 0.8,
                size_bias: 0.33,
            },
        }
    }
}

impl std::fmt::Display for TracePreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters from which a [`crate::Workload`] is generated.
///
/// The fields mirror Table 1 of the paper plus the two distribution knobs
/// (`zipf_alpha`, `size_bias`) that shape popularity and the
/// size–popularity correlation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Number of distinct files served.
    pub num_files: usize,
    /// Target mean file size in bytes.
    pub avg_file_bytes: u64,
    /// Number of requests in the full trace (used by the harness to scale
    /// message-count tables to the paper's totals).
    pub num_requests: u64,
    /// Target mean *requested* size in bytes (popularity-weighted).
    pub target_avg_request_bytes: u64,
    /// Zipf exponent of the popularity distribution.
    pub zipf_alpha: f64,
    /// Size–popularity bias passed to [`crate::FileCatalog::generate`].
    pub size_bias: f64,
}

impl WorkloadSpec {
    /// A tiny spec for fast unit tests and doc examples.
    pub fn tiny() -> Self {
        WorkloadSpec {
            num_files: 200,
            avg_file_bytes: 8 * 1024,
            num_requests: 10_000,
            target_avg_request_bytes: 6 * 1024,
            zipf_alpha: 0.8,
            size_bias: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_names_match_paper() {
        let names: Vec<&str> = TracePreset::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["Clarknet", "Forth", "Nasa", "Rutgers"]);
    }

    #[test]
    fn specs_match_table1_counts() {
        assert_eq!(TracePreset::Clarknet.spec().num_files, 28_864);
        assert_eq!(TracePreset::Forth.spec().num_requests, 400_335);
        assert_eq!(TracePreset::Nasa.spec().num_files, 9_129);
        assert_eq!(TracePreset::Rutgers.spec().num_files, 18_370);
    }

    #[test]
    fn all_specs_request_smaller_than_file_mean() {
        // Table 1: every trace's average requested size is below its
        // average file size.
        for p in TracePreset::ALL {
            let s = p.spec();
            assert!(s.target_avg_request_bytes < s.avg_file_bytes, "{p}");
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(TracePreset::Nasa.to_string(), "Nasa");
    }
}
