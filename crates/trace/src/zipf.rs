//! Zipf-like popularity distributions.
//!
//! The paper models file popularity with a Zipf-like distribution where the
//! probability of a request for the i'th most popular file is proportional
//! to `1/i^α`, with `α` typically below one (α = 0.8 in Table 5). Both the
//! workload generator and the analytical model need the *accumulated* mass
//! of the top-n files, `z(n, F)` — provided here as [`zipf_mass`].

use rand::Rng;

/// Accumulated probability `z(n, F)` of requesting the `n` most popular
/// files out of `F`, under a Zipf-like distribution with exponent `alpha`.
///
/// This is the generalized harmonic ratio `H(n, α) / H(F, α)`. Inputs are
/// clamped: `n` is capped at `f`, and `f == 0` yields `0.0`.
///
/// # Example
///
/// ```
/// use press_trace::zipf_mass;
///
/// let all = zipf_mass(1000, 1000, 0.8);
/// assert!((all - 1.0).abs() < 1e-12);
/// // The head holds disproportionate mass:
/// assert!(zipf_mass(100, 1000, 0.8) > 0.3);
/// assert!(zipf_mass(0, 1000, 0.8) == 0.0);
/// ```
pub fn zipf_mass(n: usize, f: usize, alpha: f64) -> f64 {
    if f == 0 {
        return 0.0;
    }
    let n = n.min(f);
    harmonic(n, alpha) / harmonic(f, alpha)
}

/// Generalized harmonic number `H(n, α) = Σ_{i=1..n} 1/i^α`.
///
/// Exact summation for small `n`; for large `n` the tail is approximated by
/// the integral of `x^-α` (Euler–Maclaurin leading term), which keeps model
/// sweeps over millions of files fast while staying within 1e-6 relative
/// error of the exact sum.
pub fn harmonic(n: usize, alpha: f64) -> f64 {
    const EXACT_LIMIT: usize = 100_000;
    if n == 0 {
        return 0.0;
    }
    if n <= EXACT_LIMIT {
        return (1..=n).map(|i| (i as f64).powf(-alpha)).sum();
    }
    let head = cached_head(alpha, EXACT_LIMIT);
    let a = EXACT_LIMIT as f64 + 0.5;
    let b = n as f64 + 0.5;
    let tail = if (alpha - 1.0).abs() < 1e-12 {
        (b / a).ln()
    } else {
        (b.powf(1.0 - alpha) - a.powf(1.0 - alpha)) / (1.0 - alpha)
    };
    head + tail
}

/// Memoizes `H(EXACT_LIMIT, α)` per exponent — model sweeps call
/// [`harmonic`] thousands of times with a handful of distinct alphas.
fn cached_head(alpha: f64, limit: usize) -> f64 {
    use std::cell::RefCell;
    use std::collections::HashMap;
    thread_local! {
        static HEADS: RefCell<HashMap<u64, f64>> = RefCell::new(HashMap::new());
    }
    HEADS.with(|h| {
        *h.borrow_mut()
            .entry(alpha.to_bits())
            .or_insert_with(|| (1..=limit).map(|i| (i as f64).powf(-alpha)).sum())
    })
}

/// Samples ranks `0..n` with probability proportional to `1/(rank+1)^α`.
///
/// Uses a precomputed CDF with binary search: O(n) memory, O(log n) per
/// sample, exact to f64 precision — appropriate for catalogs of up to a few
/// million files.
///
/// # Example
///
/// ```
/// use press_trace::ZipfSampler;
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let z = ZipfSampler::new(1000, 0.8);
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut head = 0u32;
/// for _ in 0..1000 {
///     if z.sample(&mut rng) < 100 {
///         head += 1;
///     }
/// }
/// // ~53% of mass lives in the top decile at alpha = 0.8.
/// assert!(head > 450 && head < 610);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    alpha: f64,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "ZipfSampler requires at least one rank");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += (i as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf, alpha }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never true; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The Zipf exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Probability of rank `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn probability(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Draws a rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_mass_boundaries() {
        assert_eq!(zipf_mass(0, 100, 0.8), 0.0);
        assert!((zipf_mass(100, 100, 0.8) - 1.0).abs() < 1e-12);
        assert!((zipf_mass(500, 100, 0.8) - 1.0).abs() < 1e-12); // n clamped
        assert_eq!(zipf_mass(10, 0, 0.8), 0.0);
    }

    #[test]
    fn zipf_mass_monotone_in_n() {
        let mut prev = 0.0;
        for n in 1..=50 {
            let m = zipf_mass(n, 50, 0.8);
            assert!(m > prev);
            prev = m;
        }
    }

    #[test]
    fn harmonic_approximation_matches_exact() {
        // Compare approximate path (n > 100k) against direct summation.
        let n = 150_000;
        let exact: f64 = (1..=n).map(|i| (i as f64).powf(-0.8)).sum();
        let approx = harmonic(n, 0.8);
        assert!((exact - approx).abs() / exact < 1e-6);
    }

    #[test]
    fn sampler_probabilities_sum_to_one() {
        let z = ZipfSampler::new(500, 0.8);
        let total: f64 = (0..500).map(|i| z.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.probability(0) > z.probability(1));
        assert!(z.probability(1) > z.probability(499));
    }

    #[test]
    fn sampler_empirical_head_mass() {
        let z = ZipfSampler::new(10_000, 0.8);
        let expected = zipf_mass(1000, 10_000, 0.8);
        let mut rng = StdRng::seed_from_u64(123);
        let draws = 200_000;
        let head = (0..draws).filter(|_| z.sample(&mut rng) < 1000).count();
        let observed = head as f64 / draws as f64;
        assert!(
            (observed - expected).abs() < 0.01,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    fn sampler_uniform_when_alpha_zero() {
        let z = ZipfSampler::new(4, 0.0);
        for i in 0..4 {
            assert!((z.probability(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn sampler_rejects_empty() {
        let _ = ZipfSampler::new(0, 0.8);
    }
}
