//! Reading and writing request logs.
//!
//! The paper replays real WWW server access logs. This module provides a
//! minimal, line-oriented log format so users can (a) export the synthetic
//! workloads for inspection or external tools, and (b) replay their own
//! traces through the simulator after converting them to this format:
//!
//! ```text
//! # press request log v1
//! # file_id<TAB>bytes
//! 17<TAB>8192
//! 3<TAB>1024
//! ```
//!
//! File ids index a catalog; each distinct id's byte size must be
//! consistent across the log (the loader validates this and rebuilds the
//! catalog from the log).

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

use crate::catalog::{FileCatalog, FileId};
use crate::stats::TraceStats;

/// Magic first line of the log format.
const HEADER: &str = "# press request log v1";

/// A materialized request trace: a catalog plus an ordered request list.
///
/// # Example
///
/// ```
/// use press_trace::{RequestLog, Workload, WorkloadSpec};
///
/// let wl = Workload::from_spec(WorkloadSpec::tiny(), 7);
/// let log = RequestLog::sample(&wl, 100, 1);
/// let mut buf = Vec::new();
/// log.write(&mut buf)?;
/// let back = RequestLog::read(buf.as_slice())?;
/// assert_eq!(back.requests(), log.requests());
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RequestLog {
    catalog: FileCatalog,
    requests: Vec<FileId>,
}

impl RequestLog {
    /// Builds a log by sampling `n` requests from a workload.
    pub fn sample(workload: &crate::stream::Workload, n: usize, seed: u64) -> Self {
        let requests: Vec<FileId> = workload.stream(seed).take(n).collect();
        RequestLog {
            catalog: workload.catalog().clone(),
            requests,
        }
    }

    /// Builds a log from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if any request references a file outside the catalog.
    pub fn from_parts(catalog: FileCatalog, requests: Vec<FileId>) -> Self {
        for r in &requests {
            assert!(
                (r.0 as usize) < catalog.len(),
                "request for unknown file {r}"
            );
        }
        RequestLog { catalog, requests }
    }

    /// The catalog reconstructed from (or supplied with) the log.
    pub fn catalog(&self) -> &FileCatalog {
        &self.catalog
    }

    /// The ordered requests.
    pub fn requests(&self) -> &[FileId] {
        &self.requests
    }

    /// Summary statistics of the log (exact, from the recorded requests).
    pub fn stats(&self) -> TraceStats {
        let total: u64 = self.requests.iter().map(|&f| self.catalog.size(f)).sum();
        TraceStats {
            name: String::new(),
            num_files: self.catalog.len(),
            avg_file_bytes: self.catalog.mean_size(),
            num_requests: self.requests.len() as u64,
            avg_request_bytes: if self.requests.is_empty() {
                0.0
            } else {
                total as f64 / self.requests.len() as f64
            },
        }
    }

    /// Writes the log in the line format described at module level.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write<W: Write>(&self, w: W) -> io::Result<()> {
        let mut out = BufWriter::new(w);
        writeln!(out, "{HEADER}")?;
        writeln!(out, "# file_id\tbytes")?;
        for &f in &self.requests {
            writeln!(out, "{}\t{}", f.0, self.catalog.size(f))?;
        }
        out.flush()
    }

    /// Reads a log, rebuilding the catalog from the observed
    /// (id, size) pairs. Unobserved catalog entries are lost — a log
    /// round-trips exactly only when every file was requested at least
    /// once; the requests themselves always round-trip.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a bad header, malformed lines, or a file id
    /// appearing with two different sizes.
    pub fn read<R: Read>(r: R) -> io::Result<Self> {
        let mut lines = BufReader::new(r).lines();
        let first = lines.next().transpose()?.ok_or_else(|| bad("empty log"))?;
        if first.trim() != HEADER {
            return Err(bad("missing log header"));
        }
        let mut sizes: Vec<Option<u64>> = Vec::new();
        let mut requests = Vec::new();
        for (lineno, line) in lines.enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (id_str, size_str) = line
                .split_once('\t')
                .ok_or_else(|| bad(&format!("line {}: expected id<TAB>bytes", lineno + 2)))?;
            let id: u32 = id_str
                .parse()
                .map_err(|_| bad(&format!("line {}: bad file id", lineno + 2)))?;
            let size: u64 = size_str
                .parse()
                .map_err(|_| bad(&format!("line {}: bad size", lineno + 2)))?;
            if sizes.len() <= id as usize {
                sizes.resize(id as usize + 1, None);
            }
            match sizes[id as usize] {
                None => sizes[id as usize] = Some(size),
                Some(existing) if existing != size => {
                    return Err(bad(&format!(
                        "file {id} appears with sizes {existing} and {size}"
                    )))
                }
                Some(_) => {}
            }
            requests.push(FileId(id));
        }
        let catalog = FileCatalog::from_sizes(sizes.into_iter().map(|s| s.unwrap_or(0)).collect());
        Ok(RequestLog { catalog, requests })
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::WorkloadSpec;
    use crate::stream::Workload;

    fn tiny_log() -> RequestLog {
        let wl = Workload::from_spec(WorkloadSpec::tiny(), 3);
        RequestLog::sample(&wl, 500, 11)
    }

    #[test]
    fn sample_has_requested_count() {
        let log = tiny_log();
        assert_eq!(log.requests().len(), 500);
        assert!(log.stats().avg_request_bytes > 0.0);
    }

    #[test]
    fn requests_round_trip() {
        let log = tiny_log();
        let mut buf = Vec::new();
        log.write(&mut buf).expect("write");
        let back = RequestLog::read(buf.as_slice()).expect("read");
        assert_eq!(back.requests(), log.requests());
        // Sizes of requested files survive.
        for &f in log.requests() {
            assert_eq!(back.catalog().size(f), log.catalog().size(f));
        }
    }

    #[test]
    fn rejects_missing_header() {
        let err = RequestLog::read("1\t100\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_inconsistent_sizes() {
        let text = format!("{HEADER}\n1\t100\n1\t200\n");
        let err = RequestLog::read(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("sizes"));
    }

    #[test]
    fn rejects_malformed_lines() {
        let text = format!("{HEADER}\nnot-a-line\n");
        assert!(RequestLog::read(text.as_bytes()).is_err());
        let text = format!("{HEADER}\nx\t100\n");
        assert!(RequestLog::read(text.as_bytes()).is_err());
        let text = format!("{HEADER}\n1\tlots\n");
        assert!(RequestLog::read(text.as_bytes()).is_err());
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = format!("{HEADER}\n# comment\n\n3\t64\n");
        let log = RequestLog::read(text.as_bytes()).expect("read");
        assert_eq!(log.requests(), &[FileId(3)]);
        assert_eq!(log.catalog().size(FileId(3)), 64);
    }

    #[test]
    #[should_panic(expected = "unknown file")]
    fn from_parts_validates() {
        let catalog = FileCatalog::from_sizes(vec![10, 20]);
        let _ = RequestLog::from_parts(catalog, vec![FileId(5)]);
    }
}
