//! Synthetic WWW server workloads for the PRESS reproduction.
//!
//! The paper drives its 8-node cluster with four real WWW traces
//! (Clarknet, Forth, Nasa, Rutgers — Table 1). Those traces are not
//! redistributable, so this crate generates *synthetic equivalents*: a file
//! catalog with a heavy-tailed (lognormal) size distribution and a Zipf-like
//! popularity distribution (the paper's own modeling section approximates
//! WWW access patterns with Zipf, α ≈ 0.8, citing Breslau et al.).
//!
//! Each preset matches the corresponding trace's Table 1 statistics:
//! number of files, average file size, number of requests, and average
//! *requested* size (popular files are smaller than average in all four
//! traces, which the generator reproduces with a size–popularity bias).
//!
//! # Example
//!
//! ```
//! use press_trace::{TracePreset, Workload};
//!
//! let wl = Workload::from_preset(TracePreset::Clarknet, 42);
//! assert_eq!(wl.catalog().len(), 28_864);
//! let stats = wl.stats();
//! // Average file size calibrated to ~14.2 KB:
//! assert!((stats.avg_file_bytes - 14.2 * 1024.0).abs() / (14.2 * 1024.0) < 0.05);
//! ```

// Pure modeling code: no unsafe, enforced at the crate boundary.
#![forbid(unsafe_code)]
mod catalog;
mod log;
mod presets;
mod scenario;
mod stats;
mod stream;
mod zipf;

pub use catalog::{FileCatalog, FileId};
pub use log::RequestLog;
pub use presets::{TracePreset, WorkloadSpec};
pub use scenario::{ScenarioOp, ScenarioPlan};
pub use stats::TraceStats;
pub use stream::{RequestStream, Workload};
pub use zipf::{zipf_mass, ZipfSampler};
