//! File catalogs: the set of (static) files a server instance exports.

use rand::Rng;
use rand_distr_lognormal::LogNormal;

/// Identifier of a file in a [`FileCatalog`], by popularity rank
/// (0 = most popular).
///
/// Indexing by popularity rank makes Zipf sampling, cache-hit analysis and
/// the paper's `z(n, F)` algebra line up with no indirection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// An immutable catalog of file sizes, indexed by popularity rank.
///
/// # Example
///
/// ```
/// use press_trace::{FileCatalog, FileId};
///
/// let cat = FileCatalog::from_sizes(vec![4096, 1024, 65536]);
/// assert_eq!(cat.len(), 3);
/// assert_eq!(cat.size(FileId(1)), 1024);
/// assert_eq!(cat.total_bytes(), 70656);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileCatalog {
    sizes: Vec<u64>,
    total_bytes: u64,
}

impl FileCatalog {
    /// Builds a catalog from explicit sizes; index i is popularity rank i.
    pub fn from_sizes(sizes: Vec<u64>) -> Self {
        let total_bytes = sizes.iter().sum();
        FileCatalog { sizes, total_bytes }
    }

    /// Generates a catalog of `n` files whose sizes follow a (truncated)
    /// lognormal distribution with the given mean, with popular files biased
    /// toward smaller sizes.
    ///
    /// `size_bias` in `[0, 1]` controls how strongly popularity correlates
    /// with small size: `0.0` assigns sizes to ranks at random, `1.0`
    /// assigns them fully sorted (rank 0 gets the smallest file). Real WWW
    /// traces show average requested size below average file size, i.e. a
    /// positive bias.
    ///
    /// Sizes are clamped to `[min_bytes, max_bytes]`; the lognormal σ is
    /// fixed at 1.5 (heavy-tailed, matching observed WWW file-size spreads).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `mean_bytes == 0`, or `min_bytes > max_bytes`.
    pub fn generate<R: Rng + ?Sized>(
        n: usize,
        mean_bytes: u64,
        min_bytes: u64,
        max_bytes: u64,
        size_bias: f64,
        rng: &mut R,
    ) -> Self {
        assert!(n > 0, "catalog must contain at least one file");
        assert!(mean_bytes > 0, "mean size must be positive");
        assert!(min_bytes <= max_bytes, "min size exceeds max size");
        const SIGMA: f64 = 1.5;
        // For lognormal, mean = exp(mu + sigma^2/2).
        let mu = (mean_bytes as f64).ln() - SIGMA * SIGMA / 2.0;
        let dist = LogNormal::new(mu, SIGMA);
        let mut sizes: Vec<u64> = (0..n)
            .map(|_| (dist.sample(rng).round() as u64).clamp(min_bytes, max_bytes))
            .collect();
        // Rescale so the empirical mean hits the target despite truncation.
        let empirical = sizes.iter().sum::<u64>() as f64 / n as f64;
        let scale = mean_bytes as f64 / empirical;
        for s in &mut sizes {
            *s = ((*s as f64 * scale).round() as u64).clamp(min_bytes, max_bytes);
        }

        // Size-popularity bias: interpolate between fully sorted
        // (bias = 1, rank 0 gets the smallest file) and a uniform shuffle
        // (bias = 0). Each file's sort key blends its normalized sorted
        // position with an independent uniform draw.
        sizes.sort_unstable();
        let size_bias = size_bias.clamp(0.0, 1.0);
        if size_bias < 1.0 {
            let n_f = n as f64;
            let mut keyed: Vec<(f64, u64)> = sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    let key = size_bias * (i as f64 / n_f) + (1.0 - size_bias) * rng.gen::<f64>();
                    (key, s)
                })
                .collect();
            keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("keys are finite"));
            sizes = keyed.into_iter().map(|(_, s)| s).collect();
        }
        FileCatalog::from_sizes(sizes)
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Size in bytes of file `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn size(&self, id: FileId) -> u64 {
        self.sizes[id.0 as usize]
    }

    /// Sum of all file sizes (the working-set size).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Mean file size in bytes.
    pub fn mean_size(&self) -> f64 {
        if self.sizes.is_empty() {
            0.0
        } else {
            self.total_bytes as f64 / self.sizes.len() as f64
        }
    }

    /// Iterates over `(FileId, size)` pairs in popularity order.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, u64)> + '_ {
        self.sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (FileId(i as u32), s))
    }
}

/// Minimal lognormal sampler (Box–Muller over `exp`), local to this crate to
/// avoid pulling in `rand_distr`.
mod rand_distr_lognormal {
    use rand::Rng;

    #[derive(Debug, Clone, Copy)]
    pub struct LogNormal {
        mu: f64,
        sigma: f64,
    }

    impl LogNormal {
        pub fn new(mu: f64, sigma: f64) -> Self {
            LogNormal { mu, sigma }
        }

        pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // Box–Muller transform.
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (self.mu + self.sigma * z).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_sizes_accessors() {
        let cat = FileCatalog::from_sizes(vec![10, 20, 30]);
        assert_eq!(cat.len(), 3);
        assert!(!cat.is_empty());
        assert_eq!(cat.size(FileId(2)), 30);
        assert_eq!(cat.total_bytes(), 60);
        assert_eq!(cat.mean_size(), 20.0);
        let ids: Vec<u32> = cat.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn generate_hits_target_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let cat = FileCatalog::generate(20_000, 14_540, 64, 2 << 20, 0.6, &mut rng);
        let rel = (cat.mean_size() - 14_540.0).abs() / 14_540.0;
        assert!(rel < 0.05, "mean off by {:.1}%", rel * 100.0);
    }

    #[test]
    fn generate_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let cat = FileCatalog::generate(5_000, 10_000, 512, 100_000, 0.5, &mut rng);
        for (_, s) in cat.iter() {
            assert!((512..=100_000).contains(&s));
        }
    }

    #[test]
    fn bias_makes_popular_files_smaller() {
        let mut rng = StdRng::seed_from_u64(3);
        let cat = FileCatalog::generate(10_000, 20_000, 64, 4 << 20, 0.7, &mut rng);
        let head: f64 = (0..1000).map(|i| cat.size(FileId(i)) as f64).sum::<f64>() / 1000.0;
        let tail: f64 = (9000..10_000)
            .map(|i| cat.size(FileId(i)) as f64)
            .sum::<f64>()
            / 1000.0;
        assert!(
            head < tail,
            "head {head} should be smaller than tail {tail}"
        );
    }

    #[test]
    fn zero_bias_is_roughly_uncorrelated() {
        let mut rng = StdRng::seed_from_u64(4);
        let cat = FileCatalog::generate(10_000, 20_000, 64, 4 << 20, 0.0, &mut rng);
        let head: f64 = (0..5000).map(|i| cat.size(FileId(i)) as f64).sum::<f64>() / 5000.0;
        let tail: f64 = (5000..10_000)
            .map(|i| cat.size(FileId(i)) as f64)
            .sum::<f64>()
            / 5000.0;
        let ratio = head / tail;
        assert!(ratio > 0.7 && ratio < 1.3, "ratio {ratio}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = FileCatalog::generate(100, 8000, 64, 1 << 20, 0.5, &mut StdRng::seed_from_u64(9));
        let b = FileCatalog::generate(100, 8000, 64, 1 << 20, 0.5, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one file")]
    fn generate_rejects_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = FileCatalog::generate(0, 1000, 64, 2048, 0.5, &mut rng);
    }
}
