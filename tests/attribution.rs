//! Attribution invariants across both engines: conservation (bucket
//! charges sum exactly to end-to-end latency), byte-determinism of the
//! `press attribute` CLI, and causal stitching of forwarded requests
//! into one cross-node trace.

use std::process::Command;
use std::time::Duration;

use proptest::collection::vec;
use proptest::prelude::*;

use press::core::{run_simulation_traced, SimConfig};
use press::server::{LiveCluster, LiveConfig};
use press::telem::{
    attribute_request, attribute_trace, by_request, chain_to_root, lane, EventKind, LiveTracer,
    TraceEvent,
};
use press::trace::{FileCatalog, FileId, TracePreset};

fn press() -> Command {
    Command::new(env!("CARGO_BIN_EXE_press"))
}

/// A short ClarkNet slice, long enough for forwards and disk traffic.
fn small_clarknet() -> SimConfig {
    let mut cfg = SimConfig::paper_default(TracePreset::Clarknet);
    cfg.measure_requests = 3_000;
    cfg.warmup_requests = 500;
    cfg
}

fn distinct_nodes(events: &[TraceEvent]) -> usize {
    let mut nodes: Vec<u16> = events.iter().map(|e| e.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes.len()
}

// ---------- conservation over real sim traces ----------

#[test]
fn sim_attribution_conserves_every_request() {
    let (_, trace) = run_simulation_traced(&small_clarknet());
    let attrs = attribute_trace(&trace);
    assert!(
        attrs.len() > 1_000,
        "only {} requests attributed",
        attrs.len()
    );
    for a in &attrs {
        assert_eq!(
            a.charged_ns(),
            a.total_ns,
            "req {} leaked nanoseconds: buckets {:?} vs total {}",
            a.req,
            a.ns,
            a.total_ns
        );
    }
    assert!(
        attrs.iter().any(|a| a.nodes >= 2),
        "no request was stitched across a forward"
    );
}

// ---------- golden stitched trace across a forwarded request (sim) ----------

#[test]
fn sim_forwarded_chain_walks_from_done_back_to_arrive() {
    let mut cfg = SimConfig::paper_default(TracePreset::Clarknet);
    cfg.nodes = 3;
    cfg.measure_requests = 2_000;
    cfg.warmup_requests = 300;
    let (_, trace) = run_simulation_traced(&cfg);
    assert_eq!(trace.dropped(), 0, "short run must fit the buffer");

    let mut cross_node_chains = 0;
    for (_, events) in by_request(&trace) {
        if distinct_nodes(&events) < 2 {
            continue;
        }
        let Some(done) = events.iter().find(|e| e.kind == EventKind::Done) else {
            continue;
        };
        assert_ne!(done.span, 0, "Done events carry a span id");
        let chain = chain_to_root(&trace, done.span);
        assert_eq!(
            chain.first().map(|e| e.kind),
            Some(EventKind::Arrive),
            "causal chain must root at the client arrival"
        );
        assert_eq!(chain.last().map(|e| e.kind), Some(EventKind::Done));
        // Spans are stamped with their *start* time at scheduling, so
        // adjacent chain links may overlap; the endpoints still bound it.
        let arrive_ts = chain.first().map(|e| e.ts_ns).unwrap_or(0);
        assert!(done.ts_ns >= arrive_ts, "Done cannot precede Arrive");
        if distinct_nodes(&chain) >= 2 {
            cross_node_chains += 1;
        }
    }
    assert!(
        cross_node_chains > 0,
        "no forwarded request produced a cross-node causal chain"
    );
}

// ---------- conservation over adversarial synthetic traces ----------

const SPAN_KINDS: [EventKind; 9] = [
    EventKind::Parse,
    EventKind::NicRx,
    EventKind::NicTx,
    EventKind::DiskRead,
    EventKind::ReplyCpu,
    EventKind::ReplyTx,
    EventKind::ViaSend,
    EventKind::ViaRecv,
    EventKind::RdmaWrite,
];

const INSTANT_KINDS: [EventKind; 6] = [
    EventKind::Dispatch,
    EventKind::CacheHit,
    EventKind::CreditStall,
    EventKind::Retry,
    EventKind::Failover,
    EventKind::DiskError,
];

fn ev(ts: u64, dur: u64, node: u16, kind: EventKind) -> TraceEvent {
    TraceEvent {
        ts_ns: ts,
        dur_ns: dur,
        node,
        lane: lane::MAIN,
        kind,
        req: 1,
        a: 0,
        b: 0,
        span: 0,
        parent: 0,
    }
}

proptest! {
    /// Arbitrary overlapping spans and instants — before, inside, and
    /// past the request window — must attribute exactly `total` ns:
    /// every elementary interval charged once, none twice, none dropped.
    #[test]
    fn attribution_is_conservative_on_arbitrary_event_soups(
        total in 1u64..200_000,
        spans in vec(
            (0u64..250_000, 1u64..80_000, 0u16..4, 0usize..SPAN_KINDS.len()),
            0..40,
        ),
        instants in vec(
            (0u64..250_000, 0u16..4, 0usize..INSTANT_KINDS.len()),
            0..12,
        ),
    ) {
        const W0: u64 = 10_000; // window start; events may precede it
        let mut events = vec![ev(W0, 0, 0, EventKind::Arrive)];
        for &(ts, dur, node, k) in &spans {
            events.push(ev(ts, dur, node, SPAN_KINDS[k]));
        }
        for &(ts, node, k) in &instants {
            events.push(ev(ts, 0, node, INSTANT_KINDS[k]));
        }
        events.push(ev(W0 + total, 0, 0, EventKind::Done));
        events.sort_by_key(|e| (e.ts_ns, e.kind as u16));

        let a = attribute_request(1, &events).expect("window is complete");
        prop_assert_eq!(a.total_ns, total);
        // Bucket charges must sum to the end-to-end window exactly.
        prop_assert_eq!(a.charged_ns(), a.total_ns);
    }
}

// ---------- CLI byte-determinism at a fixed seed ----------

#[test]
fn attribute_cli_is_byte_deterministic() {
    // One shared out dir: stdout echoes artifact paths, so the two runs
    // must agree on them for the byte comparison to be meaningful.
    let base = std::env::temp_dir().join(format!("press-attr-{}", std::process::id()));
    let run = |_tag: &str| {
        let dir = base.clone();
        std::fs::create_dir_all(&dir).expect("mkdir");
        let out = press()
            .args([
                "attribute",
                "--trace",
                "forth",
                "--versions",
                "v5",
                "--strategies",
                "pb",
                "--nodes",
                "4",
                "--measure",
                "1500",
                "--warmup",
                "300",
                "--out",
                dir.to_str().expect("utf-8 path"),
            ])
            .env("PRESS_BENCH_LOG", dir.join("bench.json"))
            .env("PRESS_QUIET", "1")
            .output()
            .expect("run press attribute");
        assert!(
            out.status.success(),
            "attribute failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let trace = std::fs::read(dir.join("trace_attr_V5_PB.json")).expect("trace artifact");
        (out.stdout, trace)
    };
    let (stdout_a, trace_a) = run("a");
    let (stdout_b, trace_b) = run("b");
    let _ = std::fs::remove_dir_all(&base);

    assert_eq!(
        stdout_a, stdout_b,
        "same-seed stdout must be byte-identical"
    );
    assert_eq!(
        trace_a, trace_b,
        "same-seed trace export must be byte-identical"
    );
    let text = String::from_utf8_lossy(&stdout_a);
    assert!(text.contains("bucket"), "table header missing: {text}");
    assert!(
        text.contains("p50 critical path"),
        "exemplars missing: {text}"
    );
}

// ---------- live cluster: a forward yields one stitched trace ----------

/// The shared warm-start placement: which node pre-caches `file`.
fn placement(file: FileId, nodes: usize) -> usize {
    ((file.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % nodes
}

#[test]
fn live_forwarded_request_stitches_one_cross_node_trace() {
    const NODES: usize = 3;
    let catalog = FileCatalog::from_sizes(vec![2048; 64]);
    let cfg = LiveConfig {
        nodes: NODES,
        ..LiveConfig::default()
    };
    let cluster = LiveCluster::start_with_tracer(cfg, catalog, Some(LiveTracer::new()));

    // A file warm-started on node 1, requested at node 0: the policy sees
    // a remote cacher and forwards over the VIA mesh.
    let file = (0..64u32)
        .map(FileId)
        .find(|&f| placement(f, NODES) == 1)
        .expect("some file hashes to node 1");
    let data = cluster
        .request(0, file, Duration::from_secs(10))
        .expect("forwarded request completes");
    assert_eq!(data.len(), 2048);

    let trace = cluster.shutdown_traced().expect("tracer was on");
    let attrs = attribute_trace(&trace);
    let a = attrs
        .iter()
        .find(|a| a.nodes >= 2)
        .expect("the forwarded request must stitch into one multi-node trace");
    assert_eq!(a.charged_ns(), a.total_ns, "live charges conserve too");
    assert!(a.total_ns > 0);

    let events = &by_request(&trace)[&a.req];
    let done = events
        .iter()
        .find(|e| e.kind == EventKind::Done)
        .expect("completed request has a Done");
    let chain = chain_to_root(&trace, done.span);
    assert_eq!(
        chain.first().map(|e| e.kind),
        Some(EventKind::Arrive),
        "live causal chain roots at the arrival: {chain:?}"
    );
    assert!(
        distinct_nodes(&chain) >= 2,
        "chain must cross the forward: {chain:?}"
    );
}
