//! Byte-identity gate for the legacy dissemination strategies.
//!
//! The press-collect subsystem (tree broadcasts, sparse load balancing)
//! added new `Strategy` variants and rewired the simulator's message
//! paths. The legacy strategies (PB, L1, L4, L16, NLB) must execute the
//! exact same code and RNG draws as before: `press simulate` output at
//! the default seed is diffed byte-for-byte against checked-in goldens
//! captured from the pre-collect build. Any drift — an extra RNG draw,
//! a reordered event, a changed counter — fails this gate.

use std::process::Command;

fn simulate(strategy: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_press"))
        .args([
            "simulate",
            "--strategy",
            strategy,
            "--measure",
            "3000",
            "--warmup",
            "500",
        ])
        .output()
        .expect("run press simulate");
    assert!(out.status.success(), "simulate {strategy} failed");
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

fn golden(name: &str) -> String {
    let path = format!(
        "{}/tests/golden/simulate_{name}_seed12648430.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn assert_byte_identical(strategy: &str) {
    let live = simulate(strategy);
    let want = golden(strategy);
    assert!(
        live == want,
        "strategy {strategy} diverged from golden: legacy output must be \
         byte-identical (first differing line: {:?})",
        live.lines()
            .zip(want.lines())
            .find(|(a, b)| a != b)
            .map(|(a, b)| format!("got `{a}`, want `{b}`"))
    );
}

#[test]
fn pb_output_is_byte_identical_to_golden() {
    assert_byte_identical("pb");
}

#[test]
fn l1_output_is_byte_identical_to_golden() {
    assert_byte_identical("l1");
}

#[test]
fn l4_output_is_byte_identical_to_golden() {
    assert_byte_identical("l4");
}

#[test]
fn l16_output_is_byte_identical_to_golden() {
    assert_byte_identical("l16");
}

#[test]
fn nlb_output_is_byte_identical_to_golden() {
    assert_byte_identical("nlb");
}

/// The new strategies are deterministic too: two runs at the same seed
/// must print the same bytes (they draw from their own seeded stream,
/// so this also guards against accidental wall-clock or HashMap-order
/// dependence in the collect paths).
#[test]
fn collect_strategies_are_run_to_run_stable() {
    for s in ["t4", "p2c", "sp4"] {
        let a = simulate(s);
        let b = simulate(s);
        assert!(a == b, "strategy {s} is not run-to-run byte-stable");
        assert!(!a.is_empty());
    }
}
