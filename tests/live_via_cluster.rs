//! End-to-end test of the software VIA substrate: a three-node cluster of
//! real threads forwarding requests and shipping files over credit
//! channels, with RDMA-written load information — a miniature of the
//! `live_cluster` example, small enough for CI.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use press::via::{CreditChannel, Descriptor, Fabric, Reliability, RemoteBuffer, Vi};

const NODES: usize = 3;
const FILE_BYTES: usize = 2048;
const REQUESTS: u32 = 200;
const T: Duration = Duration::from_secs(10);

fn owner(file: u32) -> usize {
    (file as usize) % NODES
}

fn content(file: u32) -> u8 {
    (file.wrapping_mul(97).wrapping_add(13) & 0xFF) as u8
}

#[test]
fn forwarded_file_transfers_and_rdma_loads() {
    let fabric = Fabric::new();
    let nics: Vec<_> = (0..NODES)
        .map(|i| Arc::new(fabric.create_nic(&format!("n{i}"))))
        .collect();
    let load_regions: Vec<_> = (0..NODES)
        .map(|i| {
            nics[i]
                .register(vec![0u8; 4 * NODES], true)
                .expect("register")
        })
        .collect();

    // client_chans[i][j]: i's request-tx to j and reply-rx from j.
    // server_chans[j][i]: j's request-rx from i and reply-tx to i.
    let mut client_chans: Vec<Vec<Option<(CreditChannel, CreditChannel)>>> = (0..NODES)
        .map(|_| (0..NODES).map(|_| None).collect())
        .collect();
    let mut server_chans: Vec<Vec<Option<(CreditChannel, CreditChannel)>>> = (0..NODES)
        .map(|_| (0..NODES).map(|_| None).collect())
        .collect();
    let mut load_vis: Vec<Vec<Option<Vi>>> = (0..NODES)
        .map(|_| (0..NODES).map(|_| None).collect())
        .collect();

    for i in 0..NODES {
        for j in 0..NODES {
            if i == j {
                continue;
            }
            let (req_tx, req_rx) =
                CreditChannel::pair(&fabric, &nics[i], &nics[j], 8, 4, 16).expect("req channel");
            let (rep_tx, rep_rx) =
                CreditChannel::pair(&fabric, &nics[j], &nics[i], 8, 4, FILE_BYTES)
                    .expect("rep channel");
            client_chans[i][j] = Some((req_tx, rep_rx));
            server_chans[j][i] = Some((req_rx, rep_tx));
            let (vi, _peer) = fabric
                .connect(&nics[i], &nics[j], Reliability::ReliableDelivery)
                .expect("load vi");
            load_vis[i][j] = Some(vi);
        }
    }

    let finished = Arc::new(AtomicU32::new(0));
    let mut handles = Vec::new();

    for (j, row) in server_chans.into_iter().enumerate() {
        let mut peers: Vec<(usize, CreditChannel, CreditChannel)> = row
            .into_iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|(rx, tx)| (i, rx, tx)))
            .collect();
        let finished = Arc::clone(&finished);
        handles.push(std::thread::spawn(move || {
            let poll = Duration::from_millis(1);
            while finished.load(Ordering::Acquire) < NODES as u32 {
                for (_, rx, tx) in peers.iter_mut() {
                    if let Ok(req) = rx.recv(poll) {
                        let file = u32::from_le_bytes([req[0], req[1], req[2], req[3]]);
                        assert_eq!(owner(file), j);
                        tx.send(&vec![content(file); FILE_BYTES], T).expect("reply");
                    }
                }
            }
        }));
    }

    for (i, (row, vi_row)) in client_chans.into_iter().zip(load_vis).enumerate() {
        let mut peers: Vec<(usize, CreditChannel, CreditChannel)> = row
            .into_iter()
            .enumerate()
            .filter_map(|(j, c)| c.map(|(tx, rx)| (j, tx, rx)))
            .collect();
        let vis: Vec<(usize, Vi)> = vi_row
            .into_iter()
            .enumerate()
            .filter_map(|(j, v)| v.map(|vi| (j, vi)))
            .collect();
        let nic = Arc::clone(&nics[i]);
        let regions = load_regions.clone();
        let finished = Arc::clone(&finished);
        handles.push(std::thread::spawn(move || {
            let scratch = nic.register(vec![0u8; 4], false).expect("scratch");
            for n in 0..REQUESTS {
                if n % 50 == 0 {
                    nic.write_region(scratch, 0, &n.to_le_bytes())
                        .expect("scratch");
                    for (j, vi) in &vis {
                        vi.rdma_write(
                            Descriptor::new(scratch, 0, 4),
                            RemoteBuffer {
                                region: regions[*j],
                                offset: 4 * i,
                            },
                        )
                        .expect("rdma");
                        vi.wait_send_completion(T)
                            .expect("completion")
                            .status
                            .expect("rdma ok");
                    }
                }
                let file = n.wrapping_mul(7).wrapping_add(i as u32);
                let j = owner(file);
                if j == i {
                    continue; // served locally; nothing to exercise
                }
                let (_, tx, rx) = peers.iter_mut().find(|(t, _, _)| *t == j).expect("peer");
                tx.send(&file.to_le_bytes(), T).expect("forward");
                let data = rx.recv(T).expect("file");
                assert_eq!(data.len(), FILE_BYTES);
                assert!(
                    data.iter().all(|&b| b == content(file)),
                    "corrupt file {file}"
                );
            }
            finished.fetch_add(1, Ordering::Release);
        }));
    }

    for h in handles {
        h.join().expect("cluster thread panicked");
    }

    // Every node's load table carries the final RDMA-written counts.
    let last_update = (REQUESTS - 1) / 50 * 50;
    for j in 0..NODES {
        let table = nics[j]
            .read_region(load_regions[j], 0, 4 * NODES)
            .expect("table");
        for i in 0..NODES {
            if i == j {
                continue;
            }
            let v = u32::from_le_bytes([
                table[4 * i],
                table[4 * i + 1],
                table[4 * i + 2],
                table[4 * i + 3],
            ]);
            assert_eq!(v, last_update, "node {j} view of node {i}");
        }
    }
}
