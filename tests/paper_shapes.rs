//! Integration tests asserting the paper's qualitative results on
//! scaled-down simulations (small enough for debug-mode CI).
//!
//! The full-scale reproductions live in the `press-bench` binaries; these
//! tests pin the *orderings* the paper reports so regressions in any
//! crate surface here.

use press::core::{run_simulation, Dissemination, Metrics, ServerVersion, SimConfig};
use press::net::{MessageType, ProtocolCombo};
use press::trace::WorkloadSpec;

/// A mid-size configuration: big enough for stable orderings, small
/// enough for debug builds.
fn shape_config() -> SimConfig {
    let mut cfg = SimConfig::quick_demo();
    cfg.workload = press::core::WorkloadSource::Spec(WorkloadSpec {
        num_files: 4_000,
        avg_file_bytes: 12 * 1024,
        num_requests: 100_000,
        target_avg_request_bytes: 9 * 1024,
        zipf_alpha: 0.8,
        size_bias: 0.4,
    });
    cfg.nodes = 8;
    cfg.cache_bytes_per_node = 8 << 20;
    cfg.clients_per_node = 56;
    cfg.warmup_requests = 3_000;
    cfg.measure_requests = 9_000;
    cfg
}

fn run_with(f: impl FnOnce(&mut SimConfig)) -> Metrics {
    let mut cfg = shape_config();
    f(&mut cfg);
    run_simulation(&cfg)
}

#[test]
fn figure3_protocol_ordering() {
    let fe = run_with(|c| c.combo = ProtocolCombo::TcpFe);
    let clan = run_with(|c| c.combo = ProtocolCombo::TcpClan);
    let via = run_with(|c| c.combo = ProtocolCombo::ViaClan);
    assert!(
        fe.throughput_rps < clan.throughput_rps,
        "TCP/FE {} should trail TCP/cLAN {}",
        fe.throughput_rps,
        clan.throughput_rps
    );
    assert!(
        clan.throughput_rps < via.throughput_rps,
        "TCP/cLAN {} should trail VIA/cLAN {}",
        clan.throughput_rps,
        via.throughput_rps
    );
    // The bandwidth effect (FE -> cLAN) is small next to the user-level
    // communication effect (cLAN TCP -> VIA).
    let bandwidth_gain = clan.throughput_rps / fe.throughput_rps - 1.0;
    let userlevel_gain = via.throughput_rps / clan.throughput_rps - 1.0;
    assert!(
        userlevel_gain > bandwidth_gain,
        "user-level gain {userlevel_gain:.3} should exceed bandwidth gain {bandwidth_gain:.3}"
    );
}

#[test]
fn figure1_intcluster_time_dominates_under_tcp_fe() {
    let fe = run_with(|c| c.combo = ProtocolCombo::TcpFe);
    let via = run_with(|c| c.combo = ProtocolCombo::ViaClan);
    // TCP/FE burns far more of its time on intra-cluster communication.
    assert!(
        fe.intcomm_wall_fraction > 0.3,
        "{}",
        fe.intcomm_wall_fraction
    );
    assert!(
        fe.intcomm_cpu_fraction > via.intcomm_cpu_fraction,
        "TCP {} vs VIA {}",
        fe.intcomm_cpu_fraction,
        via.intcomm_cpu_fraction
    );
}

#[test]
fn figure4_l1_broadcast_storm_hurts() {
    let pb = run_with(|c| c.dissemination = Dissemination::Piggyback);
    let l1 = run_with(|c| c.dissemination = Dissemination::Broadcast(1));
    let l16 = run_with(|c| c.dissemination = Dissemination::Broadcast(16));
    assert!(
        l1.throughput_rps < pb.throughput_rps * 0.95,
        "L1 {} should clearly trail PB {}",
        l1.throughput_rps,
        pb.throughput_rps
    );
    assert!(
        l16.throughput_rps > l1.throughput_rps,
        "higher threshold should beat L1"
    );
    // Message accounting: piggy-backing sends no load messages at all;
    // L1 floods them.
    assert_eq!(pb.counters.count(MessageType::Load), 0);
    assert!(l1.counters.count(MessageType::Load) > 10 * l16.counters.count(MessageType::Load));
}

#[test]
fn figure5_zero_copy_versions_win() {
    let v0 = run_with(|c| c.version = ServerVersion::V0);
    let v5 = run_with(|c| c.version = ServerVersion::V5);
    assert!(
        v5.throughput_rps > v0.throughput_rps,
        "V5 {} should beat V0 {}",
        v5.throughput_rps,
        v0.throughput_rps
    );
    // V5 spends clearly less CPU on intra-cluster communication.
    assert!(v5.intcomm_cpu_fraction < v0.intcomm_cpu_fraction * 0.8);
}

#[test]
fn table4_rmw_doubles_file_messages() {
    let v2 = run_with(|c| c.version = ServerVersion::V2);
    let v3 = run_with(|c| c.version = ServerVersion::V3);
    let ratio =
        v3.counters.count(MessageType::File) as f64 / v2.counters.count(MessageType::File) as f64;
    // One metadata message per file: segmentation keeps it below 2.0.
    assert!(
        (1.5..=2.1).contains(&ratio),
        "file message ratio V3/V2 = {ratio}"
    );
    // And the mean file-message size drops accordingly (Table 4).
    assert!(v3.counters.mean_size(MessageType::File) < v2.counters.mean_size(MessageType::File));
}

#[test]
fn flow_control_batches_credits() {
    let m = run_with(|_| {});
    let consuming = m.counters.count(MessageType::Forward)
        + m.counters.count(MessageType::Caching)
        + m.counters.count(MessageType::File);
    let flow = m.counters.count(MessageType::Flow);
    assert!(flow > 0, "VIA runs must exchange flow-control messages");
    let per_flow = consuming as f64 / flow as f64;
    // Credits return in batches of 4 (Table 2: ~1 flow message per ~4
    // credit-consuming messages).
    assert!(
        (3.0..=5.5).contains(&per_flow),
        "credit batch ratio {per_flow}"
    );
}

#[test]
fn tcp_runs_have_no_flow_or_rmw_messages() {
    let tcp = run_with(|c| c.combo = ProtocolCombo::TcpClan);
    assert_eq!(tcp.counters.count(MessageType::Flow), 0);
    // Sanity: the other message types flow normally.
    assert!(tcp.counters.count(MessageType::Forward) > 0);
    assert!(tcp.counters.count(MessageType::File) > 0);
}

#[test]
fn forwarding_fraction_matches_locality_design() {
    let m = run_with(|_| {});
    // With 8 nodes and modest replication most remote-cached requests are
    // forwarded: Q = (N-1)(1-h)/N caps at 7/8.
    assert!(m.forward_fraction > 0.4, "{}", m.forward_fraction);
    assert!(m.forward_fraction < 0.875 + 1e-9, "{}", m.forward_fraction);
}

#[test]
fn nlb_forwards_more_but_serves_fewer() {
    let pb = run_with(|_| {});
    let nlb = run_with(|c| c.dissemination = Dissemination::None);
    // Without load balancing there is no overload-driven replication, so
    // strictly more requests are forwarded...
    assert!(nlb.forward_fraction > pb.forward_fraction);
    // ...and no load messages of any kind exist.
    assert_eq!(nlb.counters.count(MessageType::Load), 0);
}
