//! End-to-end tests of the `press` CLI binary.

use std::process::Command;

fn press() -> Command {
    Command::new(env!("CARGO_BIN_EXE_press"))
}

#[test]
fn help_lists_commands() {
    let out = press().arg("--help").output().expect("run press");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["traces", "simulate", "model"] {
        assert!(text.contains(cmd), "help should mention {cmd}");
    }
}

#[test]
fn traces_prints_table1() {
    let out = press().arg("traces").output().expect("run press");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for trace in ["Clarknet", "Forth", "Nasa", "Rutgers"] {
        assert!(text.contains(trace), "missing {trace}: {text}");
    }
    assert!(text.contains("28864"));
}

#[test]
fn model_evaluates() {
    let out = press()
        .args([
            "model",
            "--variant",
            "via-rmw",
            "--nodes",
            "16",
            "--hsn",
            "0.85",
        ])
        .output()
        .expect("run press");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("throughput:"), "{text}");
    assert!(text.contains("bottleneck:"), "{text}");
}

#[test]
fn simulate_small_run() {
    let out = press()
        .args([
            "simulate",
            "--trace",
            "forth",
            "--measure",
            "2000",
            "--warmup",
            "500",
        ])
        .output()
        .expect("run press");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("throughput:"), "{text}");
    assert!(text.contains("TOTAL"), "{text}");
}

#[test]
fn sweep_prints_one_row_per_combination() {
    let out = press()
        .args([
            "sweep",
            "--traces",
            "clarknet,forth",
            "--versions",
            "v0,v5",
            "--measure",
            "1000",
            "--warmup",
            "300",
        ])
        .output()
        .expect("run press");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for label in [
        "Clarknet/VIA/cLAN/V0/PB",
        "Clarknet/VIA/cLAN/V5/PB",
        "Forth/VIA/cLAN/V0/PB",
        "Forth/VIA/cLAN/V5/PB",
    ] {
        assert!(text.contains(label), "missing {label}: {text}");
    }
    // Submission order: traces vary slowest, versions fastest.
    let rows: Vec<usize> = [
        "Clarknet/VIA/cLAN/V0",
        "Clarknet/VIA/cLAN/V5",
        "Forth/VIA/cLAN/V0",
        "Forth/VIA/cLAN/V5",
    ]
    .iter()
    .map(|l| text.find(l).expect("row present"))
    .collect();
    assert!(
        rows.windows(2).all(|w| w[0] < w[1]),
        "rows out of order: {text}"
    );
}

#[test]
fn sweep_stdout_is_thread_count_invariant() {
    let run = |threads: &str| {
        let out = press()
            .env("PRESS_THREADS", threads)
            .args([
                "sweep",
                "--versions",
                "v0,v4",
                "--measure",
                "800",
                "--warmup",
                "200",
            ])
            .output()
            .expect("run press");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    assert_eq!(
        run("1"),
        run("3"),
        "sweep stdout must not depend on PRESS_THREADS"
    );
}

#[test]
fn sweep_rejects_bad_version() {
    let out = press()
        .args(["sweep", "--versions", "v9"])
        .output()
        .expect("run press");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown version"));
}

#[test]
fn export_then_replay_round_trip() {
    let dir = std::env::temp_dir().join("press-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let log_path = dir.join("forth.log");
    let out = press()
        .args([
            "export",
            "--trace",
            "forth",
            "--requests",
            "5000",
            "--out",
            log_path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run export");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = press()
        .args([
            "simulate",
            "--replay",
            log_path.to_str().expect("utf8 path"),
            "--measure",
            "1500",
            "--warmup",
            "400",
        ])
        .output()
        .expect("run replay");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("throughput:"));
    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn replay_missing_file_fails_cleanly() {
    let out = press()
        .args(["simulate", "--replay", "/nonexistent/press.log"])
        .output()
        .expect("run press");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = press().arg("frobnicate").output().expect("run press");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.contains("USAGE"));
}

#[test]
fn bad_flag_fails_cleanly() {
    let out = press()
        .args(["simulate", "--nonsense", "1"])
        .output()
        .expect("run press");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn sweep_covers_collect_strategies() {
    // The press-collect strategies are first-class sweep arms: tree
    // broadcasts (t1/t4/t16), power-of-two-choices (p2c), and sparse
    // pulls (sp4) parse and run beside the legacy flat strategies.
    let out = press()
        .args([
            "sweep",
            "--strategies",
            "l16,t16,p2c,sp4",
            "--nodes",
            "16",
            "--measure",
            "800",
            "--warmup",
            "200",
        ])
        .output()
        .expect("run press");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for label in [
        "Clarknet/VIA/cLAN/V0/L16",
        "Clarknet/VIA/cLAN/V0/T16",
        "Clarknet/VIA/cLAN/V0/P2C",
        "Clarknet/VIA/cLAN/V0/SP4",
    ] {
        assert!(text.contains(label), "missing {label}: {text}");
    }
}

#[test]
fn simulate_accepts_collect_strategies() {
    for s in ["t1", "t4", "t16", "p2c", "sp4"] {
        let out = press()
            .args([
                "simulate",
                "--strategy",
                s,
                "--nodes",
                "16",
                "--measure",
                "600",
                "--warmup",
                "200",
            ])
            .output()
            .expect("run press");
        assert!(
            out.status.success(),
            "strategy {s}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
