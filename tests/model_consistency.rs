//! Cross-checks between the analytical model, the paper's reported
//! surfaces, and the discrete-event simulation.

use press::core::{run_simulation, ServerVersion, SimConfig};
use press::model::{
    sweep_file_size, sweep_hit_rate, throughput, CommVariant, ModelParams, Station,
};
use press::net::ProtocolCombo;
use press::trace::TracePreset;

#[test]
fn paper_headline_numbers() {
    // Section 5: user-level communication can improve throughput by as
    // much as 49% for current OSes (37% overhead + 12% RMW/0-copy) and
    // 55% for next-generation OSes.
    let fig8 = sweep_hit_rate(CommVariant::Tcp, CommVariant::ViaRegular, 16.0);
    assert!(
        (1.25..1.55).contains(&fig8.max_gain()),
        "figure 8 max {}",
        fig8.max_gain()
    );
    let fig10 = sweep_hit_rate(CommVariant::ViaRegular, CommVariant::ViaRmwZeroCopy, 16.0);
    assert!(
        (1.03..1.20).contains(&fig10.max_gain()),
        "figure 10 max {}",
        fig10.max_gain()
    );
    let fig12 = sweep_hit_rate(CommVariant::TcpNextGen, CommVariant::ViaNextGen, 16.0);
    assert!(
        fig12.max_gain() > fig8.max_gain(),
        "next-gen gains ({}) should exceed current-gen ({})",
        fig12.max_gain(),
        fig8.max_gain()
    );
}

#[test]
fn gains_grow_with_cluster_size() {
    // Figures 8/10/12: at a fixed hit rate, adding nodes increases the
    // gain, with diminishing increments (intra-cluster traffic grows by
    // 1/(N(N-1)) per added node).
    let g = sweep_hit_rate(CommVariant::Tcp, CommVariant::ViaRegular, 16.0);
    let row = &g.gains[7]; // high hit rate: CPU-bound everywhere
    for w in row.windows(2) {
        assert!(w[1] >= w[0] - 1e-9, "gain dropped with more nodes: {row:?}");
    }
    // Going from 64 to 128 nodes moves the gain far less than going
    // from 2 to 8 nodes (the paper's "improvements level off").
    let early = row[3] - row[1];
    let late = row[row.len() - 1] - row[row.len() - 3];
    assert!(late < early, "late {late} vs early {early}: {row:?}");
}

#[test]
fn overhead_gains_shrink_with_file_size() {
    // Figure 9: fixed per-message overhead matters less as files grow.
    let g = sweep_file_size(CommVariant::Tcp, CommVariant::ViaRegular, 0.9);
    let at_4kb = g.gains[1][8];
    let at_128kb = g.gains[8][8];
    assert!(at_4kb > at_128kb, "{at_4kb} vs {at_128kb}");
}

#[test]
fn rmw_gains_grow_with_file_size() {
    // Figure 11: copies scale with bytes, so zero-copy pays off more for
    // larger files (up to the point where client-send time dominates).
    let g = sweep_file_size(CommVariant::ViaRegular, CommVariant::ViaRmwZeroCopy, 0.9);
    let at_2kb = g.gains[0][8];
    let at_64kb = g.gains[6][8];
    assert!(at_64kb > at_2kb, "{at_64kb} vs {at_2kb}");
}

#[test]
fn bottleneck_transitions_are_sane() {
    // Sweeping hit rate at fixed size must move the bottleneck away from
    // the disk exactly once (no oscillation).
    let mut seen_non_disk = false;
    for i in 0..60 {
        let hsn = 0.2 + 0.013 * i as f64;
        let t = throughput(&ModelParams::default_at(hsn.min(0.99), 8));
        if t.bottleneck != Station::Disk {
            seen_non_disk = true;
        } else {
            assert!(!seen_non_disk, "disk bottleneck returned at hsn {hsn}");
        }
    }
    assert!(seen_non_disk, "bottleneck never left the disk");
}

#[test]
fn model_upper_bounds_simulation() {
    // Section 4.2: the model assumes cost-free distribution, perfect
    // balance and no contention, so it should sit above the simulated
    // throughput at comparable parameters — and within a sane factor.
    let mut cfg = SimConfig::paper_default(TracePreset::Nasa);
    cfg.warmup_requests = 2_000;
    cfg.measure_requests = 6_000;
    cfg.version = ServerVersion::V5;
    let sim = run_simulation(&cfg);

    let mut p = ModelParams::default_at(0.9, 8);
    p.avg_file_kb = TracePreset::Nasa.spec().target_avg_request_bytes as f64 / 1024.0;
    p.cache_mb = (cfg.cache_bytes_per_node >> 20) as f64;
    p.variant = CommVariant::ViaRmwZeroCopy;
    let model = throughput(&p);

    assert!(
        model.total_rps > sim.throughput_rps * 0.9,
        "model {} should not be far below the simulation {}",
        model.total_rps,
        sim.throughput_rps
    );
    assert!(
        model.total_rps < sim.throughput_rps * 3.0,
        "model {} should be a *tight-ish* upper bound over {}",
        model.total_rps,
        sim.throughput_rps
    );
}

#[test]
fn simulated_protocol_gap_matches_model_direction() {
    let mut cfg = SimConfig::paper_default(TracePreset::Clarknet);
    cfg.warmup_requests = 2_000;
    cfg.measure_requests = 6_000;
    cfg.combo = ProtocolCombo::TcpClan;
    let tcp = run_simulation(&cfg).throughput_rps;
    cfg.combo = ProtocolCombo::ViaClan;
    let via = run_simulation(&cfg).throughput_rps;
    let sim_gain = via / tcp;

    let mut p = ModelParams::default_at(0.95, 8);
    p.avg_file_kb = 9.7;
    p.variant = CommVariant::Tcp;
    let m_tcp = throughput(&p).total_rps;
    p.variant = CommVariant::ViaRegular;
    let m_via = throughput(&p).total_rps;
    let model_gain = m_via / m_tcp;

    assert!(sim_gain > 1.0 && model_gain > 1.0);
    // Both should land in the paper's 10-25% band for 8 nodes.
    assert!((1.03..1.4).contains(&sim_gain), "sim gain {sim_gain}");
    assert!((1.03..1.4).contains(&model_gain), "model gain {model_gain}");
}
