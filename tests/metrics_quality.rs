//! Quality invariants on the simulator's reported metrics, across every
//! server version and protocol combination.

use press::core::{run_simulation, Metrics, ServerVersion, SimConfig};
use press::net::{MessageType, ProtocolCombo};

fn check_invariants(label: &str, m: &Metrics) {
    // Flow control never leaks credits.
    assert_eq!(m.stuck_messages, 0, "{label}: stuck messages");
    // Percentiles are ordered and bracket the mean sanely.
    assert!(
        m.p50_response_ms <= m.p95_response_ms && m.p95_response_ms <= m.p99_response_ms,
        "{label}: percentile ordering {} / {} / {}",
        m.p50_response_ms,
        m.p95_response_ms,
        m.p99_response_ms
    );
    assert!(m.p50_response_ms > 0.0, "{label}: zero median");
    assert!(
        m.mean_response_ms < m.p99_response_ms * 1.5,
        "{label}: mean {} wildly above p99 {}",
        m.mean_response_ms,
        m.p99_response_ms
    );
    // Utilizations are proper fractions.
    for (name, v) in [
        ("cpu", m.cpu_utilization),
        ("disk", m.disk_utilization),
        ("hit", m.hit_rate),
        ("fwd", m.forward_fraction),
        ("int cpu", m.intcomm_cpu_fraction),
        ("int wall", m.intcomm_wall_fraction),
    ] {
        assert!((0.0..=1.0).contains(&v), "{label}: {name} = {v}");
    }
    // Message accounting: forwarded requests imply forward messages and
    // at least as many file messages (segmentation/metadata only add).
    let fwd = m.counters.count(MessageType::Forward);
    let files = m.counters.count(MessageType::File);
    if m.forward_fraction > 0.0 {
        assert!(fwd > 0, "{label}: forwarding without forward messages");
        assert!(files >= fwd, "{label}: files {files} < forwards {fwd}");
    }
    // Bytes are dominated by file payloads.
    assert!(
        m.counters.bytes(MessageType::File) > m.counters.bytes(MessageType::Forward),
        "{label}: file bytes should dominate"
    );
}

#[test]
fn invariants_hold_across_versions() {
    for version in ServerVersion::ALL {
        let mut cfg = SimConfig::quick_demo();
        cfg.version = version;
        let m = run_simulation(&cfg);
        check_invariants(version.name(), &m);
    }
}

#[test]
fn invariants_hold_across_protocols() {
    for combo in ProtocolCombo::ALL {
        let mut cfg = SimConfig::quick_demo();
        cfg.combo = combo;
        let m = run_simulation(&cfg);
        check_invariants(combo.name(), &m);
    }
}

#[test]
fn measurement_window_excludes_warmup() {
    // Doubling warmup must not change how many requests are measured,
    // and the window length stays in the same ballpark.
    let mut cfg = SimConfig::quick_demo();
    cfg.warmup_requests = 500;
    let a = run_simulation(&cfg);
    cfg.warmup_requests = 2_000;
    let b = run_simulation(&cfg);
    assert_eq!(a.measured_requests, b.measured_requests);
    let ratio = a.measure_seconds / b.measure_seconds;
    assert!((0.5..2.0).contains(&ratio), "window ratio {ratio}");
}
