//! Property-based tests over the core data structures and invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use press::cluster::{FileCache, NodeId};
use press::core::{decide, Decision, PolicyConfig, RequestView};
use press::net::{wire_bytes, DeliveryMode, MessageType};
use press::sim::{Model, Resource, Scheduler, SimTime, Simulator};
use press::trace::{zipf_mass, FileId};

// ---------- engine ----------

struct Recorder {
    fired: Vec<(u64, u32)>,
}

impl Model for Recorder {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, _s: &mut Scheduler<u32>) {
        self.fired.push((now.as_nanos(), ev));
    }
}

proptest! {
    #[test]
    fn engine_fires_in_time_then_insertion_order(
        times in vec(0u64..1_000_000, 1..200)
    ) {
        let mut sim = Simulator::new(Recorder { fired: Vec::new() });
        for (i, &t) in times.iter().enumerate() {
            sim.scheduler_mut().schedule(SimTime::from_nanos(t), i as u32);
        }
        sim.run();
        let fired = &sim.model().fired;
        prop_assert_eq!(fired.len(), times.len());
        for w in fired.windows(2) {
            let (t0, id0) = w[0];
            let (t1, id1) = w[1];
            prop_assert!(t0 <= t1);
            if t0 == t1 {
                // Same instant: insertion order (= event id order here).
                prop_assert!(id0 < id1);
            }
        }
    }

    #[test]
    fn resource_completions_are_fifo_and_busy_adds_up(
        jobs in vec((0u64..10_000, 1u64..5_000), 1..100)
    ) {
        let mut r = Resource::new("x", 1);
        let mut sorted = jobs.clone();
        sorted.sort_by_key(|&(at, _)| at);
        let mut last_done = SimTime::ZERO;
        let mut total = 0u64;
        for &(at, demand) in &sorted {
            let done = r.submit(
                SimTime::from_nanos(at),
                SimTime::from_nanos(demand),
                0,
            );
            prop_assert!(done >= last_done, "FIFO completion order");
            prop_assert!(done.as_nanos() >= at + demand);
            last_done = done;
            total += demand;
        }
        prop_assert_eq!(r.stats().busy.as_nanos(), total);
        prop_assert_eq!(r.stats().jobs, sorted.len() as u64);
    }
}

// ---------- cache ----------

proptest! {
    #[test]
    fn cache_never_exceeds_capacity(
        capacity in 100u64..10_000,
        ops in vec((0u32..200, 1u64..2_000, prop::bool::ANY), 1..300)
    ) {
        let mut cache = FileCache::new(capacity);
        for &(id, size, is_insert) in &ops {
            if is_insert {
                cache.insert(FileId(id), size);
            } else {
                cache.touch(FileId(id));
            }
            prop_assert!(cache.used_bytes() <= capacity);
            // The recency list agrees with the byte accounting.
            let listed: u64 = cache.iter().map(|(_, b)| b).sum();
            prop_assert_eq!(listed, cache.used_bytes());
            let count = cache.iter().count();
            prop_assert_eq!(count, cache.len());
        }
    }

    #[test]
    fn cache_insert_then_touch_hits(
        ids in vec(0u32..50, 1..60),
        capacity in 5_000u64..50_000
    ) {
        let mut cache = FileCache::new(capacity);
        for &id in &ids {
            cache.insert(FileId(id), 64);
            // Just inserted (tiny size, generous capacity): must hit.
            prop_assert!(cache.touch(FileId(id)));
        }
    }
}

// ---------- zipf ----------

proptest! {
    #[test]
    fn zipf_mass_is_a_cdf(f in 1usize..5_000, alpha in 0.0f64..1.5) {
        let full = zipf_mass(f, f, alpha);
        prop_assert!((full - 1.0).abs() < 1e-9);
        let mut prev = 0.0;
        for n in [f / 7, f / 3, f / 2, f] {
            let m = zipf_mass(n, f, alpha);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&m));
            prop_assert!(m >= prev - 1e-12);
            prev = m;
        }
    }

    #[test]
    fn zipf_head_is_heavier_than_uniform(f in 10usize..5_000, alpha in 0.1f64..1.2) {
        // The n most popular files always hold at least their uniform
        // share n/f of the mass (probabilities are non-increasing).
        let n = (f / 10).max(1);
        let head = zipf_mass(n, f, alpha);
        let uniform = n as f64 / f as f64;
        prop_assert!(
            head >= uniform - 1e-9,
            "head {head} under uniform share {uniform}"
        );
    }
}

// ---------- policy ----------

proptest! {
    #[test]
    fn decision_is_always_valid(
        initial in 0u16..8,
        file_bytes in 1u64..2_000_000,
        cached_locally in prop::bool::ANY,
        first in prop::bool::ANY,
        cacher_bits in 0u8..=255,
        loads in vec(0u32..200, 8),
        lb in prop::bool::ANY,
    ) {
        let cfg = PolicyConfig::default();
        let cachers: Vec<NodeId> = (0..8u16)
            .filter(|i| cacher_bits & (1 << i) != 0)
            .map(NodeId)
            .collect();
        let view = RequestView {
            initial: NodeId(initial),
            file_bytes,
            cached_locally,
            first_request: first,
            cachers: &cachers,
            loads: &loads,
            load_balancing: lb,
        };
        match decide(&cfg, &view) {
            Decision::ServeLocal => {}
            Decision::Forward(target) => {
                // Never forwards to itself, only to believed cachers,
                // never for large files or first requests.
                prop_assert_ne!(target, NodeId(initial));
                prop_assert!(cachers.contains(&target));
                prop_assert!(file_bytes < cfg.large_file_cutoff);
                prop_assert!(!first && !cached_locally);
            }
        }
    }

    #[test]
    fn balanced_policy_prefers_lightest_cacher(
        loads in vec(0u32..=80, 8),
    ) {
        // All remote nodes cache the file, nobody is overloaded: the
        // decision must be the least-loaded node (lowest id on ties).
        let cfg = PolicyConfig::default();
        let cachers: Vec<NodeId> = (1..8u16).map(NodeId).collect();
        let view = RequestView {
            initial: NodeId(0),
            file_bytes: 1_000,
            cached_locally: false,
            first_request: false,
            cachers: &cachers,
            loads: &loads,
            load_balancing: true,
        };
        let best = (1..8u16)
            .min_by_key(|&i| (loads[i as usize], i))
            .map(NodeId)
            .expect("cachers");
        prop_assert_eq!(decide(&cfg, &view), Decision::Forward(best));
    }
}

// ---------- wire encoding ----------

proptest! {
    #[test]
    fn wire_bytes_invariants(data_len in 0u64..64_000) {
        for ty in MessageType::ALL {
            for pb in [false, true] {
                let reg = wire_bytes(ty, data_len, DeliveryMode::Regular, pb);
                let rmw = wire_bytes(ty, data_len, DeliveryMode::Rmw, pb);
                // Every message carries at least its payload.
                prop_assert!(reg >= ty.payload_bytes(data_len));
                // RMW framing never exceeds regular framing.
                prop_assert!(rmw <= reg);
                // Piggy-backing only ever adds bytes to regular messages.
                let reg_nopb = wire_bytes(ty, data_len, DeliveryMode::Regular, false);
                prop_assert!(reg >= reg_nopb);
            }
        }
    }
}
