//! Trace determinism: observability must be passive.
//!
//! Turning the tracer on cannot perturb the simulation (byte-identical
//! results either way), and two traced same-seed runs must export
//! byte-identical Chrome trace files.

use press::core::{run_simulation, run_simulation_traced, SimConfig};
use press::telem::{chrome_trace_json, validate_chrome_json};
use press::trace::TracePreset;

/// A short ClarkNet slice: long enough to exercise every span type
/// (cache hits, forwards, disk, VIA credit traffic), short enough for CI.
fn small_clarknet() -> SimConfig {
    let mut cfg = SimConfig::paper_default(TracePreset::Clarknet);
    cfg.measure_requests = 3_000;
    cfg.warmup_requests = 500;
    cfg
}

#[test]
fn tracing_does_not_change_results() {
    let cfg = small_clarknet();
    let plain = run_simulation(&cfg);
    let (traced, trace) = run_simulation_traced(&cfg);
    assert_eq!(plain, traced, "tracing must be invisible to the results");
    assert!(!trace.events().is_empty(), "the trace itself must be real");
}

#[test]
fn same_seed_traces_export_byte_identically() {
    let cfg = small_clarknet();
    let (_, t1) = run_simulation_traced(&cfg);
    let (_, t2) = run_simulation_traced(&cfg);
    assert_eq!(chrome_trace_json(&t1), chrome_trace_json(&t2));
}

#[test]
fn exported_trace_validates_with_cluster_coverage() {
    let (_, trace) = run_simulation_traced(&small_clarknet());
    assert_eq!(trace.dropped(), 0, "short run must fit the buffer");
    let json = chrome_trace_json(&trace);
    let check = validate_chrome_json(&json).expect("schema-valid trace");
    assert!(check.events > 0 && check.spans > 0);
    assert!(
        check.nodes.len() >= 2,
        "spans from at least two nodes: {:?}",
        check.nodes
    );
    assert!(check.via_events > 0, "VIA-level events present");
}
